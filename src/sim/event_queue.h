// Pending-event set for the discrete-event simulator: a binary heap ordered
// by (time, insertion sequence) — simultaneous events fire in FIFO order,
// which makes runs reproducible — with O(1) lazy cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace manet::sim {

/// Simulated time in seconds.
using Time = double;

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. Id 0 is never issued and acts as "no event".
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`. Returns a cancellation handle.
  EventId push(Time t, EventFn fn);

  /// Cancels a pending event. Returns false if the handle is unknown,
  /// already fired, or already cancelled — all safe to ignore.
  bool cancel(EventId id);

  /// True if the event is scheduled and not yet fired or cancelled.
  bool pending(EventId id) const { return pending_.count(id) > 0; }

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event. Requires !empty().
  Time next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  struct Fired {
    Time time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

  /// Lifetime counters, exposed for stats/tests.
  std::uint64_t total_scheduled() const { return next_id_ - 1; }
  std::uint64_t total_cancelled() const { return cancelled_count_; }

 private:
  struct Entry {
    Time time;
    EventId id;
    mutable EventFn fn;  // moved out on pop; heap never reorders after that
    bool operator>(const Entry& o) const {
      if (time != o.time) {
        return time > o.time;
      }
      return id > o.id;  // ids are issued in insertion order
    }
  };

  void drop_cancelled_front();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
  std::uint64_t cancelled_count_ = 0;
};

}  // namespace manet::sim
