#include "sim/simulator.h"

namespace manet::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    step();
  }
}

void Simulator::run_until(Time t_end) {
  MANET_CHECK(t_end >= now_, "run_until(" << t_end << ") in the past");
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t_end) {
    step();
  }
  if (!stopped_) {
    now_ = t_end;
  }
}

bool Simulator::step() {
  if (queue_.empty()) {
    return false;
  }
  auto fired = queue_.pop();
  MANET_ASSERT(fired.time >= now_, "event time regressed");
  now_ = fired.time;
  ++executed_;
  // Any check failing inside the handler surfaces as util::SimError stamped
  // with the current simulated time (and node id, if a node handler adds it).
  util::ScopedSimTime failure_context(now_);
  fired.fn();
  return true;
}

}  // namespace manet::sim
