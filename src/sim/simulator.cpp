#include "sim/simulator.h"

#include "obs/metrics.h"

namespace manet::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    step();
  }
}

void Simulator::run_until(Time t_end) {
  MANET_CHECK(t_end >= now_, "run_until(" << t_end << ") in the past");
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t_end) {
    step();
  }
  if (!stopped_) {
    now_ = t_end;
  }
}

bool Simulator::step() {
  if (queue_.empty()) {
    return false;
  }
  auto fired = queue_.pop();
  MANET_ASSERT(fired.time >= now_, "event time regressed");
  now_ = fired.time;
  ++executed_;
  if (hooks_ != nullptr &&
      executed_ % obs::SimHooks::kQueueDepthSamplePeriod == 0) {
    sample_queue_depth();
  }
  // Any check failing inside the handler surfaces as util::SimError stamped
  // with the current simulated time (and node id, if a node handler adds it).
  util::ScopedSimTime failure_context(now_);
  fired.fn();
  return true;
}

void Simulator::sample_queue_depth() {
  if (hooks_->queue_depth != nullptr) {
    hooks_->queue_depth->record(static_cast<double>(queue_.size()));
  }
}

}  // namespace manet::sim
