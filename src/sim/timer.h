// Timer helpers built on the simulator.
//
// PeriodicTimer — fires a callback every `period` seconds starting at
//   `first_at`; models the Hello broadcast-interval timer.
// OneShotTimer  — restartable single-shot timer; models the MOBIC Cluster
//   Contention Interval (CCI) deferral.
//
// Both hold a reference to the Simulator and must not outlive it.
#pragma once

#include "sim/simulator.h"

namespace manet::sim {

class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, EventFn on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {
    MANET_CHECK(on_fire_ != nullptr);
  }
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts firing at absolute time `first_at`, then every `period` seconds.
  void start(Time first_at, Time period);
  void stop();
  bool running() const { return event_ != kNoEvent; }
  Time period() const { return period_; }

  /// Changes the period; takes effect from the next firing (used by the
  /// mobility-adaptive beacon-interval extension).
  void set_period(Time period);

 private:
  void fire();

  Simulator& sim_;
  EventFn on_fire_;
  Time period_ = 0.0;
  EventId event_ = kNoEvent;
};

class OneShotTimer {
 public:
  OneShotTimer(Simulator& sim, EventFn on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {
    MANET_CHECK(on_fire_ != nullptr);
  }
  ~OneShotTimer() { cancel(); }

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// (Re)arms the timer `delay` seconds from now, replacing any pending
  /// expiry.
  void arm(Time delay);
  /// Cancels a pending expiry; no-op when idle.
  void cancel();
  bool armed() const { return event_ != kNoEvent && sim_.pending(event_); }

 private:
  Simulator& sim_;
  EventFn on_fire_;
  EventId event_ = kNoEvent;
};

}  // namespace manet::sim
