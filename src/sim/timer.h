// Timer helpers built on the simulator.
//
// PeriodicTimer — fires a callback every `period` seconds starting at
//   `first_at`; models the Hello broadcast-interval timer.
// OneShotTimer  — restartable single-shot timer; models the MOBIC Cluster
//   Contention Interval (CCI) deferral.
//
// Both hold a reference to the Simulator and must not outlive it.
#pragma once

#include "sim/simulator.h"

namespace manet::sim {

class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, EventFn on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {
    MANET_CHECK(on_fire_ != nullptr);
  }
  // Destruction is post-run serial teardown; it cancels via the same
  // commit-only path but runs after the event loop has drained, so it is
  // role-agnostic rather than commit-only.
  ~PeriodicTimer() MANET_ROLE_AGNOSTIC { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts firing at absolute time `first_at`, then every `period` seconds.
  void start(Time first_at, Time period) MANET_COMMIT_ONLY;
  void stop() MANET_COMMIT_ONLY;
  bool running() const { return event_ != kNoEvent; }
  Time period() const { return period_; }

  /// Changes the period; takes effect from the next firing (used by the
  /// mobility-adaptive beacon-interval extension).
  void set_period(Time period) MANET_COMMIT_ONLY;

 private:
  void fire() MANET_COMMIT_ONLY;

  Simulator& sim_;
  EventFn on_fire_;
  Time period_ = 0.0;
  EventId event_ = kNoEvent;
};

class OneShotTimer {
 public:
  OneShotTimer(Simulator& sim, EventFn on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {
    MANET_CHECK(on_fire_ != nullptr);
  }
  ~OneShotTimer() MANET_ROLE_AGNOSTIC { cancel(); }

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// (Re)arms the timer `delay` seconds from now, replacing any pending
  /// expiry.
  void arm(Time delay) MANET_COMMIT_ONLY;
  /// Cancels a pending expiry; no-op when idle.
  void cancel() MANET_COMMIT_ONLY;
  bool armed() const { return event_ != kNoEvent && sim_.pending(event_); }

 private:
  Simulator& sim_;
  EventFn on_fire_;
  EventId event_ = kNoEvent;
};

}  // namespace manet::sim
