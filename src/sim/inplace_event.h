// Small-buffer-optimized callback for the event queue.
//
// `std::function<void()>` heap-allocates for captures larger than its
// (implementation-defined) inline buffer and drags in RTTI/copyability
// machinery the simulator never uses. Every hot-path callback in this
// codebase is a small lambda ([this], [this, i], a couple of POD values),
// so InplaceEvent stores the callable directly in a 48-byte inline buffer.
// Oversized or alignment-exotic captures are a compile error, not a heap
// fallback: every callback provably lives inline, so the queue's
// steady-state zero-allocation contract holds by construction. It is
// move-only with a noexcept move (required so the event queue's slab can
// grow by relocation), which also removes the accidental capture-copying
// that std::function permits.
//
// The per-type behavior lives in a static Ops table (invoke / relocate /
// destroy) instead of a virtual base, keeping the object two pointers of
// overhead and the dispatch a single indirect call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace manet::sim {

class InplaceEvent {
 public:
  // Inline capacity. 48 bytes fits every production callback (the largest
  // is a [this + a few scalars] capture) with the whole object at 64 bytes.
  static constexpr std::size_t kCapacity = 48;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  InplaceEvent() noexcept = default;
  InplaceEvent(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  // Wraps any void() callable. Lvalues are copied in, rvalues moved in;
  // the callable must fit the inline buffer and be nothrow-movable —
  // enforced at compile time, so no caller can silently put an event
  // callback on the heap. Captures over 48 bytes: shrink the capture or
  // raise kCapacity deliberately.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceEvent> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  InplaceEvent(F&& f) {  // NOLINT(runtime/explicit)
    static_assert(fits_inline<D>(),
                  "event callback capture exceeds InplaceEvent's inline "
                  "buffer (or lacks a noexcept move); shrink the capture "
                  "or raise kCapacity");
    ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
    ops_ = &kInlineOps<D>;
  }

  InplaceEvent(InplaceEvent&& other) noexcept { move_from(other); }

  InplaceEvent& operator=(InplaceEvent&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceEvent& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceEvent(const InplaceEvent&) = delete;
  InplaceEvent& operator=(const InplaceEvent&) = delete;

  ~InplaceEvent() { reset(); }

  /// Invokes the stored callable. Undefined when empty (checked by the
  /// queue at push time).
  void operator()() { ops_->invoke(buffer_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  friend bool operator==(const InplaceEvent& e, std::nullptr_t) noexcept {
    return e.ops_ == nullptr;
  }
  friend bool operator==(std::nullptr_t, const InplaceEvent& e) noexcept {
    return e.ops_ == nullptr;
  }
  friend bool operator!=(const InplaceEvent& e, std::nullptr_t) noexcept {
    return e.ops_ != nullptr;
  }
  friend bool operator!=(std::nullptr_t, const InplaceEvent& e) noexcept {
    return e.ops_ != nullptr;
  }

  /// Destroys the stored callable, leaving the event empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs the payload from `src` storage into `dst` storage and
    // destroys the source. Must not throw (slab relocation relies on it).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kCapacity && alignof(D) <= kAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* s) { (*static_cast<D*>(s))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        D* from = static_cast<D*>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      /*destroy=*/[](void* s) noexcept { static_cast<D*>(s)->~D(); },
  };

  void move_from(InplaceEvent& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  alignas(kAlign) unsigned char buffer_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace manet::sim
