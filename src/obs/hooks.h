// Pre-resolved handle bundles the instrumented subsystems hold.
//
// Each subsystem (simulator, network, clustering agent, fault injector)
// keeps one nullable pointer to its hook struct; every field is resolved
// once at setup by the scenario driver (see scenario/scenario.cpp), so the
// steady-state cost of an instrumented code path is one pointer test plus a
// plain integer add. A null hooks pointer (the default everywhere) means
// fully uninstrumented — bit-identical behavior, zero overhead.
#pragma once

#include <cstdint>

namespace manet::obs {

class Counter;
class Histogram;
class TraceSink;

/// Simulator-core metrics (sim::Simulator::set_hooks).
struct SimHooks {
  /// Sampled pending-event population (every kQueueDepthSamplePeriod
  /// executed events — cheap and dense enough to see cascades).
  Histogram* queue_depth = nullptr;
  static constexpr std::uint64_t kQueueDepthSamplePeriod = 256;
};

/// Hello-substrate counters (net::Network::set_hooks). The delivery
/// identity these names are tested against (test_obs_differential.cpp):
///   hello_sent == hello_delivered + hello_dropped_fading +
///                 hello_dropped_loss
/// where hello_sent counts per-receiver in-range delivery attempts (one
/// broadcast reaches many receivers; beacon_sent counts broadcasts).
struct NetHooks {
  Counter* beacon_sent = nullptr;           // "beacon.sent"
  Counter* hello_sent = nullptr;            // "hello.sent"
  Counter* hello_delivered = nullptr;       // "hello.delivered"
  Counter* hello_dropped_fading = nullptr;  // "hello.dropped.fading"
  Counter* hello_dropped_loss = nullptr;    // "hello.dropped.loss"
  Counter* hello_dropped_collision = nullptr;  // "hello.dropped.collision"
  Counter* neighbor_timeout = nullptr;      // "neighbor.timeout"
  Counter* msg_sent = nullptr;              // "msg.sent"
  Counter* msg_delivered = nullptr;         // "msg.delivered"
};

/// Clustering-agent internals that only the agent itself can observe
/// (cluster::ClusterOptions::obs). The event-driven counters (elections,
/// resignations, reaffiliations) live in cluster::ObsClusterSink instead —
/// they are derivable from the public ClusterEventSink stream, which keeps
/// them an independent oracle against cluster::ClusterStats.
struct AgentHooks {
  /// Head-vs-head contacts deferred because the CCI has not expired yet
  /// (one per rival per decision round).
  Counter* cci_deferral = nullptr;  // "cci.deferral"
  /// CCI contention windows that matured into a resignation.
  Counter* cci_resolved = nullptr;  // "cci.resolved"
  /// When set, resolved/abandoned contention windows are emitted as spans
  /// on the node track.
  TraceSink* trace = nullptr;
};

/// Battery-model lifecycle (net::EnergyModel::set_hooks). Resolved only
/// when the scenario enables the energy model, so energy-free runs keep
/// their metrics snapshots unchanged.
struct EnergyHooks {
  Counter* depleted = nullptr;  // "energy.depleted" (batteries hitting zero)
  Counter* drains = nullptr;    // "energy.drain" (discrete drain events)
  /// Per-node residual-energy ratio at end of run (recorded by settle_all).
  Histogram* residual_ratio = nullptr;  // "energy.residual_ratio"
};

/// Fault-injector lifecycle (fault::Injector::set_hooks).
struct FaultHooks {
  Counter* activated = nullptr;       // "fault.activated" (had effect)
  Counter* moot = nullptr;            // "fault.moot" (target already there)
  Counter* window_expired = nullptr;  // "fault.window_expired"
  TraceSink* trace = nullptr;
};

}  // namespace manet::obs
