// The metrics half of the observability layer: named counters and
// fixed-bucket histograms behind pre-registered handles.
//
// Ownership model mirrors the MRIP execution model of scenario::Runner:
// every simulation run owns exactly one Registry and updates it from a
// single thread, so handles are plain integers with no synchronization on
// the hot path (an increment is one add on a pre-allocated slot — the
// zero-allocation contract of tests/test_zero_alloc.cpp). Cross-thread
// aggregation happens by value: each run snapshots its registry and the
// caller merges Snapshots, which is deterministic in any merge order the
// canonical-order reduction of the Runner produces.
//
// The whole layer compiles out with -DMANET_OBS=OFF: handles survive but
// inc()/record() become empty inline functions, so instrumented call sites
// need no #ifdefs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_role.h"

#ifndef MANET_OBS_ENABLED
#define MANET_OBS_ENABLED 1
#endif

namespace manet::obs {

/// A monotonically increasing event count. Obtain from Registry::counter();
/// the handle stays valid for the registry's lifetime.
class Counter {
 public:
  // Metric updates are replay-visible (snapshots are golden-hashed), so
  // the mutating handles are commit-only.
  void inc(std::uint64_t n = 1) MANET_COMMIT_ONLY {
#if MANET_OBS_ENABLED
    value_ += n;
#else
    (void)n;
#endif
  }
  std::uint64_t value() const {
#if MANET_OBS_ENABLED
    return value_;
#else
    return 0;
#endif
  }

 private:
#if MANET_OBS_ENABLED
  std::uint64_t value_ = 0;
#endif
};

/// Fixed-bucket histogram with Prometheus "le" semantics: bucket i counts
/// samples v with v <= bounds[i] that did not fit an earlier bucket, i.e.
/// bucket 0 is (-inf, bounds[0]], bucket i is (bounds[i-1], bounds[i]], and
/// one implicit overflow bucket holds v > bounds.back(). A sample equal to a
/// bound lands in that bound's bucket, not the next one — the boundary
/// contract tests/test_obs_registry.cpp pins down.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void record(double v) MANET_COMMIT_ONLY {
#if MANET_OBS_ENABLED
    // Buckets are few (protocol histograms use <= 16); a linear scan beats
    // binary search at this size and stays branch-predictable.
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) {
      ++i;
    }
    ++counts_[i];
    sum_ += v;
#else
    (void)v;
#endif
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t total_count() const;
  double sum() const {
#if MANET_OBS_ENABLED
    return sum_;
#else
    return 0.0;
#endif
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 entries
#if MANET_OBS_ENABLED
  double sum_ = 0.0;
#endif
};

/// A registry's state frozen by value: plain data, safe to copy across
/// threads, mergeable, JSON-serializable. Entries are sorted by name, so two
/// snapshots of identical runs compare equal byte for byte.
struct Snapshot {
  struct CounterCell {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterCell&) const = default;
  };
  struct HistogramCell {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    double sum = 0.0;
    bool operator==(const HistogramCell&) const = default;
  };

  std::vector<CounterCell> counters;      // sorted by name
  std::vector<HistogramCell> histograms;  // sorted by name

  bool empty() const { return counters.empty() && histograms.empty(); }

  /// Value of a counter, or `fallback` when absent.
  std::uint64_t counter_or(const std::string& name,
                           std::uint64_t fallback = 0) const;
  const HistogramCell* histogram(const std::string& name) const;

  /// Adds `other` into this snapshot: counters sum by name (union of
  /// names), histograms add bucket-wise. Histograms sharing a name must
  /// have identical bounds (CheckError otherwise).
  void merge(const Snapshot& other);

  /// Compact one-line JSON object:
  /// {"counters":{...},"histograms":{name:{"bounds":[..],"counts":[..],
  /// "sum":..}}}.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

  bool operator==(const Snapshot&) const = default;
};

/// Owner of all counters and histograms of one simulation run. Handle
/// registration allocates and is meant for setup time; updates through the
/// returned handles never allocate. Not thread-safe — one registry belongs
/// to one run on one thread (see file comment).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// Handles are stable for the registry's lifetime.
  Counter* counter(const std::string& name);

  /// Returns the histogram registered under `name`, creating it with
  /// `bounds` on first use. Re-registering with different bounds is a
  /// CheckError — bucket layouts are part of a metric's contract.
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  std::size_t size() const { return counters_.size() + histograms_.size(); }

  /// Freezes the current values (sorted by name).
  Snapshot snapshot() const;

 private:
  // Stable handle addresses: the unique_ptr boxes never move even as the
  // name vectors grow.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace manet::obs
