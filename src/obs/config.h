// Per-run observability configuration, carried by scenario::Scenario.
#pragma once

#include <string>

#include "obs/trace.h"

namespace manet::obs {

struct ObsConfig {
  /// Metrics registry: counters + histograms, snapshotted into
  /// RunResult::metrics. On by default — the steady-state cost is plain
  /// integer adds (no allocation, no RNG draws), so enabling it never
  /// perturbs a run's event or draw sequence.
  bool metrics = true;

  /// Tracing level; kOff by default (traces buffer every span in memory,
  /// so full traces are opt-in per run). If `trace_path` is set while the
  /// level is kOff, the level is promoted to kSpans.
  TraceLevel trace = TraceLevel::kOff;

  /// Where to write the Chrome-trace JSON at the end of the run. The
  /// placeholders "{seed}" and "{tag}" are expanded, letting one Scenario
  /// template fan out to per-run files under a parallel Runner.
  std::string trace_path;

  /// Free-form run label for {tag} (the Runner fills it with
  /// "p<point>_<algorithm>_s<seed>" when it clones scenarios for a grid).
  std::string tag;

  /// Sampling period (sim seconds) of the full-level counter tracks.
  double counter_sample_period = 1.0;

  bool trace_enabled() const {
    return trace != TraceLevel::kOff || !trace_path.empty();
  }
  bool any() const { return metrics || trace_enabled(); }
};

}  // namespace manet::obs
