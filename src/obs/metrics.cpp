#include "obs/metrics.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace manet::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MANET_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    MANET_CHECK(bounds_[i - 1] < bounds_[i],
                "histogram bounds must be strictly increasing: "
                    << bounds_[i - 1] << " !< " << bounds_[i]);
  }
  counts_.assign(bounds_.size() + 1, 0);
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) {
    total += c;
  }
  return total;
}

std::uint64_t Snapshot::counter_or(const std::string& name,
                                   std::uint64_t fallback) const {
  for (const CounterCell& c : counters) {
    if (c.name == name) {
      return c.value;
    }
  }
  return fallback;
}

const Snapshot::HistogramCell* Snapshot::histogram(
    const std::string& name) const {
  for (const HistogramCell& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

void Snapshot::merge(const Snapshot& other) {
  for (const CounterCell& theirs : other.counters) {
    const auto it = std::lower_bound(
        counters.begin(), counters.end(), theirs.name,
        [](const CounterCell& c, const std::string& n) { return c.name < n; });
    if (it != counters.end() && it->name == theirs.name) {
      it->value += theirs.value;
    } else {
      counters.insert(it, theirs);
    }
  }
  for (const HistogramCell& theirs : other.histograms) {
    const auto it = std::lower_bound(
        histograms.begin(), histograms.end(), theirs.name,
        [](const HistogramCell& h, const std::string& n) {
          return h.name < n;
        });
    if (it != histograms.end() && it->name == theirs.name) {
      MANET_CHECK(it->bounds == theirs.bounds,
                  "merging histogram '" << theirs.name
                                        << "' with different bounds");
      for (std::size_t i = 0; i < it->counts.size(); ++i) {
        it->counts[i] += theirs.counts[i];
      }
      it->sum += theirs.sum;
    } else {
      histograms.insert(it, theirs);
    }
  }
}

void Snapshot::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i > 0 ? "," : "") << "\"" << counters[i].name
        << "\":" << counters[i].value;
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramCell& h = histograms[i];
    out << (i > 0 ? "," : "") << "\"" << h.name << "\":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out << (b > 0 ? "," : "") << h.bounds[b];
    }
    out << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out << (b > 0 ? "," : "") << h.counts[b];
    }
    out << "],\"sum\":" << h.sum << "}";
  }
  out << "}}";
}

std::string Snapshot::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

Counter* Registry::counter(const std::string& name) {
  MANET_CHECK(!name.empty(), "counter with empty name");
  for (const auto& [existing, handle] : counters_) {
    if (existing == name) {
      return handle.get();
    }
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return counters_.back().second.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  MANET_CHECK(!name.empty(), "histogram with empty name");
  for (const auto& [existing, handle] : histograms_) {
    if (existing == name) {
      MANET_CHECK(handle->bounds() == bounds,
                  "histogram '" << name
                                << "' re-registered with different bounds");
      return handle.get();
    }
  }
  histograms_.emplace_back(name, std::make_unique<Histogram>(std::move(bounds)));
  return histograms_.back().second.get();
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, handle] : counters_) {
    snap.counters.push_back({name, handle->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, handle] : histograms_) {
    snap.histograms.push_back(
        {name, handle->bounds(), handle->counts(), handle->sum()});
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const Snapshot::CounterCell& a, const Snapshot::CounterCell& b) {
              return a.name < b.name;
            });
  std::sort(
      snap.histograms.begin(), snap.histograms.end(),
      [](const Snapshot::HistogramCell& a, const Snapshot::HistogramCell& b) {
        return a.name < b.name;
      });
  return snap;
}

}  // namespace manet::obs
