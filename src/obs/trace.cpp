#include "obs/trace.h"

#include <algorithm>
#include <ostream>
#include <set>

#include "util/assert.h"

namespace manet::obs {

namespace {

constexpr double kSecondsToMicros = 1e6;

void write_event_prefix(std::ostream& out, const char* name, char ph, int pid,
                        int tid, double ts_us) {
  out << "{\"name\":\"" << name << "\",\"ph\":\"" << ph << "\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"ts\":" << ts_us;
}

}  // namespace

TraceLevel parse_trace_level(const std::string& name) {
  if (name == "off") {
    return TraceLevel::kOff;
  }
  if (name == "spans") {
    return TraceLevel::kSpans;
  }
  if (name == "full") {
    return TraceLevel::kFull;
  }
  MANET_CHECK(false, "unknown trace level '" << name
                                             << "' (off | spans | full)");
  return TraceLevel::kOff;
}

const char* trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff:
      return "off";
    case TraceLevel::kSpans:
      return "spans";
    case TraceLevel::kFull:
      return "full";
  }
  return "off";
}

TraceSink::TraceSink(TraceLevel level) : level_(level) {}

void TraceSink::complete(int pid, int tid, const char* name, double t0,
                         double t1, const char* arg_key, std::int64_t arg) {
  if (!enabled()) {
    return;
  }
  MANET_ASSERT(t1 >= t0, "span ends before it starts");
  Event e;
  e.name = name;
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts_us = t0 * kSecondsToMicros;
  e.dur_us = (t1 - t0) * kSecondsToMicros;
  e.arg_key = arg_key;
  e.arg = arg;
  events_.push_back(e);
}

void TraceSink::instant(int pid, int tid, const char* name, double t,
                        const char* arg_key, std::int64_t arg) {
  if (!enabled()) {
    return;
  }
  Event e;
  e.name = name;
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.ts_us = t * kSecondsToMicros;
  e.arg_key = arg_key;
  e.arg = arg;
  events_.push_back(e);
}

void TraceSink::counter(const char* name, double t, double value) {
  if (!full()) {
    return;
  }
  Event e;
  e.name = name;
  e.ph = 'C';
  e.pid = kRunPid;
  e.tid = 0;
  e.ts_us = t * kSecondsToMicros;
  e.value = value;
  events_.push_back(e);
}

void TraceSink::write_json(std::ostream& out) const {
  // Default stream precision (6 significant digits) truncates microsecond
  // timestamps past ~100 s of sim time; 15 digits keep every ts/dur exact
  // at trace scale.
  const std::streamsize old_precision = out.precision(15);
  // Stable sort by timestamp: deterministic output with monotonic ts, and
  // same-time events keep their emission (sim event) order.
  std::vector<std::size_t> order(events_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return events_[a].ts_us < events_[b].ts_us;
                   });

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) {
      out << ",";
    }
    first = false;
  };

  // Metadata: human names for the process tracks and every node thread.
  const auto process_name = [&](int pid, const char* name) {
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << name << "\"}}";
  };
  process_name(kRunPid, "run");
  std::set<int> node_tids;
  bool any_fault = false;
  for (const Event& e : events_) {
    if (e.pid == kNodePid) {
      node_tids.insert(e.tid);
    } else if (e.pid == kFaultPid) {
      any_fault = true;
    }
  }
  if (!node_tids.empty()) {
    process_name(kNodePid, "nodes");
    for (const int tid : node_tids) {
      sep();
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kNodePid
          << ",\"tid\":" << tid << ",\"args\":{\"name\":\"node " << tid
          << "\"}}";
    }
  }
  if (any_fault) {
    process_name(kFaultPid, "faults");
  }

  for (const std::size_t i : order) {
    const Event& e = events_[i];
    sep();
    write_event_prefix(out, e.name, e.ph, e.pid, e.tid, e.ts_us);
    if (e.ph == 'X') {
      out << ",\"dur\":" << e.dur_us;
    }
    if (e.ph == 'i') {
      out << ",\"s\":\"t\"";
    }
    if (e.ph == 'C') {
      out << ",\"args\":{\"value\":" << e.value << "}";
    } else if (e.arg_key != nullptr) {
      out << ",\"args\":{\"" << e.arg_key << "\":" << e.arg << "}";
    }
    out << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
  out.precision(old_precision);
}

}  // namespace manet::obs
