// The tracing half of the observability layer: an in-memory buffer of
// Chrome trace-event records (the JSON array format chrome://tracing and
// Perfetto load directly), stamped with *simulated* time. Because sim time
// is deterministic, a run's trace is bit-identical no matter how many
// worker threads the Runner uses — the property test_obs_trace.cpp pins.
//
// Track layout:
//   pid 0 "run"    — simulator phase spans (warmup, measurement) and
//                    sampled counter tracks ("C" events, full level only)
//   pid 1 "nodes"  — one thread per node: clusterhead-tenure spans, CCI
//                    contention windows, point-fault instants
//   pid 2 "faults" — window-fault spans (loss bursts, jam zones,
//                    partitions)
//
// Event names must be string literals (or otherwise outlive the sink):
// records store the pointer, keeping the steady-state record cheap. Tracing
// is opt-in per run; the buffer grows on demand, so the zero-allocation
// contract applies only when the sink is absent or off.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace manet::obs {

enum class TraceLevel : std::uint8_t {
  kOff = 0,
  /// Spans and instants: clusterhead tenure, CCI windows, faults, phases.
  kSpans = 1,
  /// kSpans plus sampled counter tracks (event-queue depth, hello rates).
  kFull = 2,
};

/// Parses "off" / "spans" / "full" (CheckError on anything else).
TraceLevel parse_trace_level(const std::string& name);
const char* trace_level_name(TraceLevel level);

class TraceSink {
 public:
  // Track (pid) constants; see file comment.
  static constexpr int kRunPid = 0;
  static constexpr int kNodePid = 1;
  static constexpr int kFaultPid = 2;

  explicit TraceSink(TraceLevel level = TraceLevel::kSpans);

  TraceLevel level() const { return level_; }
  bool enabled() const { return level_ != TraceLevel::kOff; }
  bool full() const { return level_ == TraceLevel::kFull; }

  /// Pre-sizes the event buffer (setup-time allocation).
  void reserve(std::size_t events) { events_.reserve(events); }

  /// A completed span ("X") on [t0, t1] seconds of sim time. `arg_key`, if
  /// given, attaches one integer argument. No-ops when the sink is off.
  void complete(int pid, int tid, const char* name, double t0, double t1,
                const char* arg_key = nullptr, std::int64_t arg = 0);

  /// An instant event ("i", thread scope) at time t seconds.
  void instant(int pid, int tid, const char* name, double t,
               const char* arg_key = nullptr, std::int64_t arg = 0);

  /// A counter sample ("C") — rendered as a stacked area track. Recorded
  /// only at TraceLevel::kFull.
  void counter(const char* name, double t, double value);

  std::size_t size() const { return events_.size(); }

  /// Emits {"traceEvents":[...],"displayTimeUnit":"ms"}. Events are stably
  /// sorted by timestamp, so output timestamps are monotonic and the byte
  /// stream is deterministic. Thread-name metadata is generated for every
  /// node track seen.
  void write_json(std::ostream& out) const;

 private:
  struct Event {
    const char* name = nullptr;
    char ph = 'X';
    int pid = 0;
    int tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;     // "X" only
    double value = 0.0;      // "C" only
    const char* arg_key = nullptr;
    std::int64_t arg = 0;
  };

  TraceLevel level_;
  std::vector<Event> events_;
};

}  // namespace manet::obs
