// The paper's aggregate local mobility metric (§3.1, eq. 2):
//
//   M_Y = var0( M_rel^Y(X_1) ... M_rel^Y(X_m) ) = E[(M_rel)^2]
//
// the variance-about-zero of the per-neighbor relative-mobility samples.
// Low M_Y -> Y is quasi-static relative to its neighborhood -> good
// clusterhead. The estimator below also implements the paper's §5
// "history" extension (EWMA smoothing across beacon rounds) as an option.
#pragma once

#include <span>

#include "metrics/relative_mobility.h"
#include "net/neighbor_table.h"

namespace manet::metrics {

/// Eq. (2): var0 of the samples; 0 for an empty set.
double aggregate_mobility(std::span<const double> m_rel_samples);

struct AggregateMobilityConfig {
  /// Maximum spacing between two receptions for them to count as
  /// "successive" (defaults to the paper's TP: one missed beacon excludes).
  double successive_max_gap = 3.0;
  /// Neighbor liveness horizon (TP).
  double neighbor_timeout = 3.0;
  /// EWMA smoothing factor in (0, 1]: M <- alpha*M_now + (1-alpha)*M_prev.
  /// 1.0 reproduces the paper's memoryless metric; smaller values implement
  /// the §5 history extension.
  double ewma_alpha = 1.0;
  /// When a round yields no eligible samples (sparse neighborhood): if true
  /// keep the previous estimate, else reset to 0 (the paper's initial
  /// value).
  bool hold_on_empty = true;
};

/// Per-node running estimator of M. One instance per node, updated once per
/// beacon (just before the Hello is stamped with the value, §3.2/§4.1).
class AggregateMobilityEstimator {
 public:
  explicit AggregateMobilityEstimator(
      const AggregateMobilityConfig& config = {});

  /// Computes this round's M from the node's neighbor table and folds it
  /// into the (optionally smoothed) estimate. Returns the new estimate.
  double update(const net::NeighborTable& table, sim::Time now);

  /// Current estimate (0 until the first update — the paper's initial M).
  double value() const { return value_; }

  /// Number of eligible samples in the most recent round.
  std::size_t last_sample_count() const { return last_sample_count_; }

  void reset();

 private:
  AggregateMobilityConfig config_;
  double value_ = 0.0;
  bool has_value_ = false;
  std::size_t last_sample_count_ = 0;
  std::vector<double> scratch_;
};

}  // namespace manet::metrics
