#include "metrics/relative_mobility.h"

#include <cmath>

#include "util/assert.h"

namespace manet::metrics {

double relative_mobility_db(double rx_new_w, double rx_old_w) {
  MANET_CHECK(rx_new_w > 0.0 && rx_old_w > 0.0,
              "received powers must be positive: new=" << rx_new_w
                                                       << " old=" << rx_old_w);
  return 10.0 * std::log10(rx_new_w / rx_old_w);
}

void collect_relative_mobility_into(const net::NeighborTable& table,
                                    sim::Time now, double max_gap,
                                    double timeout, std::vector<double>& out) {
  out.clear();
  for (const net::NeighborEntry& e : table.entries()) {
    if (e.last_heard < now - timeout) {
      continue;  // effectively gone; purge will drop it
    }
    if (!e.has_successive_pair(max_gap)) {
      continue;  // missed a beacon in the window: excluded (paper §3.1)
    }
    out.push_back(relative_mobility_db(e.last_rx_w, e.prev_rx_w));
  }
}

std::vector<double> collect_relative_mobility(const net::NeighborTable& table,
                                              sim::Time now, double max_gap,
                                              double timeout) {
  std::vector<double> samples;
  samples.reserve(table.size());
  collect_relative_mobility_into(table, now, max_gap, timeout, samples);
  return samples;
}

}  // namespace manet::metrics
