// The geometric mobility metric of Johansson et al. [11] — the related-work
// baseline the paper critiques (§2.2): pairwise absolute relative speed,
// averaged over time and over all node pairs. It needs global position
// knowledge (GPS-like), which is exactly why MOBIC does not use it; we
// implement it as a *scenario characterization* tool (Table-1 bench) and as
// a reference point in tests.
//
// Also provides link-level ground-truth statistics (mean link lifetime,
// link change rate) used to sanity-check generated scenarios.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "mobility/mobility_model.h"
#include "mobility/track.h"

namespace manet::metrics {

/// |v_a - v_b| at time t (m/s), from recorded tracks.
double pairwise_relative_speed(const mobility::PiecewiseLinearTrack& a,
                               const mobility::PiecewiseLinearTrack& b,
                               sim::Time t);

/// The aggregate metric of [11]: mean over all unordered pairs and over
/// sample times t = 0, dt, 2dt, ... <= duration of the pairwise relative
/// speed. Requires >= 2 tracks.
double geometric_mobility_metric(
    std::span<const mobility::PiecewiseLinearTrack> tracks,
    sim::Time duration, sim::Time dt);

/// Ground-truth connectivity statistics for a scenario at a given radio
/// range, from sampled positions.
struct LinkStats {
  double mean_degree = 0.0;       // average neighbors per node per sample
  double mean_link_lifetime = 0.0;  // seconds a link stays up, on average
  std::uint64_t link_changes = 0;   // total up->down + down->up transitions
  std::uint64_t links_observed = 0; // distinct (pair, up-interval) episodes
};

LinkStats link_stats(std::span<const mobility::PiecewiseLinearTrack> tracks,
                     double range_m, sim::Time duration, sim::Time dt);

}  // namespace manet::metrics
