// The paper's pairwise relative mobility metric (§3.1, eq. 1):
//
//   M_rel^Y(X) = 10 * log10( RxPr_new^{X->Y} / RxPr_old^{X->Y} )   [dB]
//
// computed at receiver Y from the received powers of two successive Hello
// transmissions of neighbor X. Negative = moving apart, positive =
// approaching. Under Friis free space this equals 20*log10(d_old/d_new) —
// a pure function of the distance ratio, needing no GPS or velocity.
#pragma once

#include <span>
#include <vector>

#include "net/neighbor_table.h"
#include "sim/event_queue.h"

namespace manet::metrics {

/// Eq. (1). Both powers must be positive.
double relative_mobility_db(double rx_new_w, double rx_old_w);

/// Extracts one eq.-(1) sample per eligible neighbor from a neighbor table
/// into `out` (overwritten; capacity reused — the allocation-free variant
/// used by the per-beacon estimator). Eligible = still alive at `now`
/// (heard within `timeout`) and with two successive receptions no further
/// than `max_gap` apart — the paper's heuristic that excludes nodes which
/// did not participate in two successive transmissions during the window.
/// Samples are ordered by neighbor id (deterministic).
void collect_relative_mobility_into(const net::NeighborTable& table,
                                    sim::Time now, double max_gap,
                                    double timeout, std::vector<double>& out);

/// Convenience wrapper returning a fresh vector.
std::vector<double> collect_relative_mobility(const net::NeighborTable& table,
                                              sim::Time now, double max_gap,
                                              double timeout);

}  // namespace manet::metrics
