#include "metrics/geometric.h"

#include "geom/vec2.h"
#include "util/assert.h"
#include "util/stats.h"

namespace manet::metrics {

double pairwise_relative_speed(const mobility::PiecewiseLinearTrack& a,
                               const mobility::PiecewiseLinearTrack& b,
                               sim::Time t) {
  return (a.velocity(t) - b.velocity(t)).norm();
}

double geometric_mobility_metric(
    std::span<const mobility::PiecewiseLinearTrack> tracks,
    sim::Time duration, sim::Time dt) {
  MANET_CHECK(tracks.size() >= 2, "need at least two tracks");
  MANET_CHECK(duration >= 0.0 && dt > 0.0);
  util::RunningStats stats;
  for (sim::Time t = 0.0; t <= duration + 1e-9; t += dt) {
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      for (std::size_t j = i + 1; j < tracks.size(); ++j) {
        stats.add(pairwise_relative_speed(tracks[i], tracks[j], t));
      }
    }
  }
  return stats.mean();
}

LinkStats link_stats(std::span<const mobility::PiecewiseLinearTrack> tracks,
                     double range_m, sim::Time duration, sim::Time dt) {
  MANET_CHECK(range_m > 0.0 && duration >= 0.0 && dt > 0.0);
  const std::size_t n = tracks.size();
  LinkStats out;
  if (n < 2) {
    return out;
  }

  // Per-pair link state machine over the sampled timeline.
  std::vector<char> up(n * (n - 1) / 2, 0);
  std::vector<sim::Time> up_since(n * (n - 1) / 2, 0.0);
  util::RunningStats lifetime;
  util::RunningStats degree;
  const auto pair_index = [n](std::size_t i, std::size_t j) {
    // i < j; row-major upper triangle.
    return i * n - i * (i + 1) / 2 + (j - i - 1);
  };

  std::vector<geom::Vec2> pos(n);
  bool first = true;
  for (sim::Time t = 0.0; t <= duration + 1e-9; t += dt) {
    for (std::size_t i = 0; i < n; ++i) {
      pos[i] = tracks[i].position(t);
    }
    std::vector<std::size_t> deg(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const bool now_up = geom::distance(pos[i], pos[j]) <= range_m;
        const std::size_t k = pair_index(i, j);
        if (now_up) {
          ++deg[i];
          ++deg[j];
        }
        if (!first && now_up != static_cast<bool>(up[k])) {
          ++out.link_changes;
          if (!now_up) {
            lifetime.add(t - up_since[k]);
            ++out.links_observed;
          }
        }
        if (now_up && (first || !up[k])) {
          up_since[k] = t;
        }
        up[k] = now_up ? 1 : 0;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      degree.add(static_cast<double>(deg[i]));
    }
    first = false;
  }
  // Links still up at the end contribute a (censored) lifetime too.
  for (std::size_t k = 0; k < up.size(); ++k) {
    if (up[k]) {
      lifetime.add(duration - up_since[k]);
      ++out.links_observed;
    }
  }
  out.mean_degree = degree.mean();
  out.mean_link_lifetime = lifetime.mean();
  return out;
}

}  // namespace manet::metrics
