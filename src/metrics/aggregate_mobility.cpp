#include "metrics/aggregate_mobility.h"

#include "util/assert.h"
#include "util/stats.h"

namespace manet::metrics {

double aggregate_mobility(std::span<const double> m_rel_samples) {
  return util::var0(m_rel_samples);
}

AggregateMobilityEstimator::AggregateMobilityEstimator(
    const AggregateMobilityConfig& config)
    : config_(config) {
  MANET_CHECK(config_.successive_max_gap > 0.0);
  MANET_CHECK(config_.neighbor_timeout > 0.0);
  MANET_CHECK(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
              "ewma_alpha=" << config_.ewma_alpha);
}

double AggregateMobilityEstimator::update(const net::NeighborTable& table,
                                          sim::Time now) {
  collect_relative_mobility_into(table, now, config_.successive_max_gap,
                                 config_.neighbor_timeout, scratch_);
  last_sample_count_ = scratch_.size();

  if (scratch_.empty()) {
    if (!config_.hold_on_empty) {
      value_ = 0.0;
      has_value_ = false;
    }
    return value_;
  }

  const double m_now = aggregate_mobility(scratch_);
  if (!has_value_) {
    value_ = m_now;  // first measurement seeds the EWMA
    has_value_ = true;
  } else {
    value_ = config_.ewma_alpha * m_now +
             (1.0 - config_.ewma_alpha) * value_;
  }
  return value_;
}

void AggregateMobilityEstimator::reset() {
  value_ = 0.0;
  has_value_ = false;
  last_sample_count_ = 0;
}

}  // namespace manet::metrics
