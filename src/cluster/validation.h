// Theorem-1 validators (paper §3.2): in a stable state the weight-based
// clustering yields clusters of diameter <= 2 hops and no two clusterheads
// within range of each other. These checks run against *ground truth*
// geometry (exact positions and the nominal range), independent of the
// protocol's own tables, so they catch protocol bugs rather than reflect
// protocol beliefs.
#pragma once

#include <string>
#include <vector>

#include "cluster/agent.h"
#include "net/network.h"

namespace manet::cluster {

struct ValidationReport {
  /// Nodes still Cluster_Undecided (alive only).
  std::size_t undecided = 0;
  /// Pairs of clusterheads within range of each other.
  std::size_t head_pairs_in_range = 0;
  /// Members whose clusterhead is not within range (diameter > 2 witness).
  std::size_t members_beyond_head_range = 0;
  /// Members affiliated with a node that is not currently an alive head.
  std::size_t members_of_non_head = 0;
  /// Nodes with at least one in-range neighbor, total (context for the
  /// counts above; isolated nodes legitimately self-elect).
  std::size_t connected_nodes = 0;
  /// Dead (failed / churned-out) nodes, excluded from every count above —
  /// fault-injection runs measure the health of the survivors.
  std::size_t dead_nodes = 0;

  bool clean() const {
    return undecided == 0 && head_pairs_in_range == 0 &&
           members_beyond_head_range == 0 && members_of_non_head == 0;
  }
  bool operator==(const ValidationReport&) const = default;
  std::string to_string() const;
};

/// Evaluates the invariants at time `t` over the alive nodes. `agents[i]`
/// must correspond to node i of the network. Dead nodes contribute no
/// links, are skipped entirely, and a member whose clusterhead has died
/// counts as members_of_non_head until it re-homes.
ValidationReport validate_clusters(
    net::Network& network,
    const std::vector<const WeightedClusterAgent*>& agents, sim::Time t);

/// Allocation-free variant for periodic callers (the convergence monitor):
/// the ground-truth adjacency is built into `scratch`, whose buffers keep
/// their capacity across calls, so repeated validation is heap-quiet once
/// warmed up. Produces the identical report.
ValidationReport validate_clusters(
    net::Network& network,
    const std::vector<const WeightedClusterAgent*>& agents, sim::Time t,
    net::Network::AdjacencyScratch& scratch);

}  // namespace manet::cluster
