// ClusterEventSink that feeds the observability layer: clusterhead
// election/resignation counters, the CS replica, tenure histograms, and
// per-node tenure spans on the trace.
//
// Deliberately independent of cluster::ClusterStats even where they count
// the same thing — the differential test (tests/test_obs_differential.cpp)
// uses one as the oracle for the other, which only works if neither shares
// the other's code path.
#pragma once

#include <vector>

#include "cluster/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace manet::cluster {

class ObsClusterSink final : public ClusterEventSink {
 public:
  /// Registers its metrics in `registry` (which must outlive the sink).
  /// `warmup` gates the CS-replica counters ("ch.changed",
  /// "reaffiliation") exactly like ClusterStats; the all-time counters
  /// ("ch.elected", "ch.resigned") are not gated, so
  ///   ch.elected - ch.resigned == number of clusterheads at run end
  /// holds at any instant. `cascade_window` (seconds) couples consecutive
  /// clusterhead changes into one reclustering cascade — changes arriving
  /// within the window extend the cascade, a longer gap closes it and
  /// records its depth (number of changes) in "recluster.cascade_depth".
  /// A window of ~1.25 broadcast intervals links changes that can causally
  /// see each other through Hellos. `trace` may be null.
  ObsClusterSink(obs::Registry& registry, double warmup,
                 double cascade_window, obs::TraceSink* trace = nullptr);

  /// Pre-sizes the per-node reign table (zero-allocation steady state).
  void reserve_nodes(std::size_t n);

  void on_role_change(sim::Time t, net::NodeId node, Role old_role,
                      Role new_role) override;
  void on_affiliation_change(sim::Time t, net::NodeId node,
                             net::NodeId old_head,
                             net::NodeId new_head) override;

  /// Closes open reigns at simulation end: censored tenures go to the
  /// histogram and the trace, no counter moves. Idempotent per run.
  void finish(sim::Time end);

 private:
  void close_reign(net::NodeId node, sim::Time end);
  void note_cascade_event(sim::Time t);
  void flush_cascade();

  double warmup_;
  double cascade_window_;
  obs::Counter* elected_;        // "ch.elected"
  obs::Counter* resigned_;       // "ch.resigned"
  obs::Counter* changed_;        // "ch.changed" (post-warmup CS replica)
  obs::Counter* reaffiliation_;  // "reaffiliation"
  obs::Histogram* tenure_;       // "ch.tenure" (seconds)
  obs::Histogram* cascade_;      // "recluster.cascade_depth"
  obs::TraceSink* trace_;
  /// reign_since_[node] — start of the node's current reign, < 0 if none.
  std::vector<sim::Time> reign_since_;
  /// Open reclustering cascade: last change time and depth so far.
  sim::Time cascade_last_ = -1.0;
  std::uint64_t cascade_depth_ = 0;
};

}  // namespace manet::cluster
