#include "cluster/stats.h"

#include <algorithm>

#include "util/assert.h"

namespace manet::cluster {

namespace {

// Locates `node` in a reign list kept ascending by node id.
auto reign_lower_bound(std::vector<std::pair<net::NodeId, sim::Time>>& v,
                       net::NodeId node) {
  return std::lower_bound(
      v.begin(), v.end(), node,
      [](const auto& r, net::NodeId id) { return r.first < id; });
}

}  // namespace

ClusterStats::ClusterStats(double warmup) : warmup_(warmup) {
  MANET_CHECK(warmup >= 0.0, "warmup=" << warmup);
}

void ClusterStats::on_role_change(sim::Time t, net::NodeId node,
                                  Role old_role, Role new_role) {
  MANET_ASSERT(old_role != new_role);
  // Reign tracking runs from t=0 so lifetimes of heads elected during
  // warm-up are still measured correctly.
  if (new_role == Role::kHead) {
    const auto it = reign_lower_bound(reign_since_, node);
    if (it == reign_since_.end() || it->first != node) {
      reign_since_.insert(it, {node, t});
    } else {
      it->second = t;
    }
  } else if (old_role == Role::kHead) {
    const auto it = reign_lower_bound(reign_since_, node);
    if (it != reign_since_.end() && it->first == node) {
      head_lifetimes_.add(t - it->second);
      add_tenure(node, t - it->second);
      reign_since_.erase(it);
    }
  }
  if (t < warmup_) {
    return;
  }
  ++role_changes_;
  if (new_role == Role::kHead) {
    ++head_gains_;
  } else if (old_role == Role::kHead) {
    ++head_losses_;
  }
}

void ClusterStats::on_affiliation_change(sim::Time t, net::NodeId node,
                                         net::NodeId old_head,
                                         net::NodeId new_head) {
  if (t < warmup_) {
    return;
  }
  if (old_head != net::kInvalidNode && new_head != net::kInvalidNode &&
      old_head != node && new_head != node) {
    ++reaffiliations_;
  }
}

void ClusterStats::finish(sim::Time end) {
  MANET_CHECK(!finished_, "finish() called twice");
  finished_ = true;
  // reign_since_ is ascending by node id, so the censored lifetimes enter
  // the accumulator in a reproducible order.
  for (const auto& [node, since] : reign_since_) {
    head_lifetimes_.add(end - since);
    add_tenure(node, end - since);
  }
  reign_since_.clear();
}

void ClusterStats::add_tenure(net::NodeId node, double seconds) {
  const auto it = std::lower_bound(
      head_tenure_.begin(), head_tenure_.end(), node,
      [](const auto& r, net::NodeId id) { return r.first < id; });
  if (it == head_tenure_.end() || it->first != node) {
    head_tenure_.insert(it, {node, seconds});
  } else {
    it->second += seconds;
  }
}

ClusterSampler::ClusterSampler(sim::Simulator& sim,
                               std::vector<const WeightedClusterAgent*> agents)
    : sim_(sim), agents_(std::move(agents)) {
  MANET_CHECK(!agents_.empty(), "sampler with no agents");
  for (const auto* a : agents_) {
    MANET_CHECK(a != nullptr, "null agent");
  }
}

void ClusterSampler::start(sim::Time first_at, sim::Time period,
                           sim::Time until) {
  MANET_CHECK(period > 0.0, "period=" << period);
  MANET_CHECK(until >= first_at, "until < first_at");
  period_ = period;
  until_ = until;
  sim_.schedule_at(first_at, [this] {
    MANET_ASSERT_COMMIT_ROLE();
    tick();
  });
}

void ClusterSampler::tick() {
  sample_now();
  const sim::Time next = sim_.now() + period_;
  if (next <= until_ + 1e-9) {
    sim_.schedule_at(next, [this] {
    MANET_ASSERT_COMMIT_ROLE();
    tick();
  });
  }
}

void ClusterSampler::sample_now() {
  std::size_t heads = 0;
  std::size_t gateways = 0;
  std::size_t undecided = 0;
  sizes_scratch_.assign(agents_.size(), 0);
  for (const auto* a : agents_) {
    switch (a->role()) {
      case Role::kHead:
        ++heads;
        break;
      case Role::kMember:
        if (a->is_gateway()) {
          ++gateways;
        }
        break;
      case Role::kUndecided:
        ++undecided;
        break;
    }
    const net::NodeId head = a->cluster_head();
    if (head != net::kInvalidNode) {
      // agents_[i] corresponds to node i, so every advertised head indexes
      // the scratch directly; resize guards partial-agent test setups.
      if (head >= sizes_scratch_.size()) {
        sizes_scratch_.resize(head + 1, 0);
      }
      ++sizes_scratch_[head];
    }
  }
  num_clusters_.add(static_cast<double>(heads));
  num_gateways_.add(static_cast<double>(gateways));
  num_undecided_.add(static_cast<double>(undecided));
  // Ascending head id: the accumulation order is a function of the sample,
  // not of standard-library hash order.
  for (const std::size_t size : sizes_scratch_) {
    if (size > 0) {
      cluster_sizes_.add(static_cast<double>(size));
    }
  }
}

}  // namespace manet::cluster
