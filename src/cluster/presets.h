// Ready-made ClusterOptions for every algorithm the paper discusses, using
// the Table-1 timing constants. These are the configurations the benches and
// examples instantiate.
#pragma once

#include "cluster/agent.h"

namespace manet::cluster {

/// MOBIC (the paper): mobility weight, LCC member rule, CCI deferral.
ClusterOptions mobic_options(ClusterEventSink* sink = nullptr,
                             double cci = 4.0);

/// Lowest-ID with the LCC rule [3] — the paper's comparison baseline.
ClusterOptions lowest_id_lcc_options(ClusterEventSink* sink = nullptr);

/// Original (eager) Lowest-ID [4, 5] — pre-LCC behaviour, ablation A3.
ClusterOptions lowest_id_plain_options(ClusterEventSink* sink = nullptr);

/// Max-Connectivity / highest-degree [5] with LCC damping — ablation A4.
ClusterOptions max_connectivity_options(ClusterEventSink* sink = nullptr);

/// DCA-style clustering on an externally assigned static weight [2].
ClusterOptions dca_options(double weight, ClusterEventSink* sink = nullptr);

/// MOBIC with the §5 EWMA-history extension (alpha < 1 smooths M).
ClusterOptions mobic_history_options(double ewma_alpha,
                                     ClusterEventSink* sink = nullptr,
                                     double cci = 4.0);

/// WCA-style combined weight (extension): blends the paper's mobility
/// metric with a degree-fitness term, showing the DCA framework's
/// generality. Uses MOBIC's LCC + CCI machinery.
ClusterOptions combined_options(double mobility_weight = 1.0,
                                double degree_weight = 1.0,
                                double ideal_degree = 8.0,
                                ClusterEventSink* sink = nullptr);

/// Combined Closeness Index (arXiv:1104.5705): composite lexicographic
/// weight {degree closeness, mobility utility, id} elected through the
/// Pareto-frontier prefilter. Uses MOBIC's LCC + CCI machinery.
ClusterOptions cci_options(ClusterEventSink* sink = nullptr);

/// SD_DWCA (arXiv:1105.5521): stability / degree / residual-energy blend
/// with the energy deficit as the tie-break. The energy source is wired in
/// by the scenario driver (ClusterOptions::energy); without one every node
/// reads a full battery and the energy terms are inert.
ClusterOptions sd_dwca_options(ClusterEventSink* sink = nullptr);

/// Named algorithm lookup for CLI-driven benches: "mobic",
/// "lowest_id" (LCC), "lowest_id_plain", "max_connectivity",
/// "mobic_history:<alpha>", "cci", "sd_dwca".
ClusterOptions options_by_name(std::string_view name,
                               ClusterEventSink* sink = nullptr);

/// True when options_by_name(name) would succeed. The sweep farm uses this
/// to route cells to worker processes only for algorithms that can be named
/// across a process boundary (custom lambda factories cannot).
bool is_known_algorithm(std::string_view name);

}  // namespace manet::cluster
