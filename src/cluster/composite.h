// Composite-weight election helpers: per-metric utility transforms, the
// Pareto-frontier candidate filter, and the lexicographic minimum — the
// STELLAR election idiom. Raw node attributes (mobility, degree deviation,
// residual-energy deficit) are first mapped into comparable utilities, the
// candidate set is narrowed to its Pareto frontier (nobody componentwise
// dominated survives), and the winner is the lexicographic minimum with the
// node id as the final tie-break.
//
// Correctness: the lexicographic minimum of a candidate set is always on its
// Pareto frontier (a componentwise dominator would also precede it
// lexicographically), so the frontier is a pure prefilter — it never changes
// the elected head, only prunes the comparison set. test_weight_properties
// pins this equivalence against a brute-force oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/weight.h"

namespace manet::cluster {

/// Maps x in [0, inf) to [0, 1): x / (x + ref). `ref` is the half-utility
/// point (u(ref) = 0.5); negative x clamps to 0. Lower is better on both
/// sides of the transform.
constexpr double saturating_utility(double x, double ref) {
  if (x <= 0.0) {
    return 0.0;
  }
  return x / (x + ref);
}

/// Distance from the ideal operating point: |x - ideal| (the WCA/CCI degree
/// closeness term).
constexpr double deviation_utility(double x, double ideal) {
  const double d = x - ideal;
  return d < 0.0 ? -d : d;
}

/// Flips a [0, 1] utility (residual-energy ratio -> energy deficit).
constexpr double complement_utility(double u) { return 1.0 - u; }

/// True if `a` componentwise dominates `b` (a <= b everywhere over the
/// padded arrays, strictly < somewhere; lower is better). The id tie-break
/// plays no part in domination.
bool pareto_dominates(const Weight& a, const Weight& b);

/// Marks the Pareto frontier of `candidates`: on return `frontier[i]` is
/// nonzero iff no other candidate dominates candidates[i]. `frontier` is
/// caller-owned scratch (resized, reserve it once to stay alloc-free).
void pareto_frontier(std::span<const Weight> candidates,
                     std::vector<std::uint8_t>& frontier);

/// Index of the lexicographic minimum (full Weight order, id tie-break
/// included); candidates must be non-empty.
std::size_t lex_min_index(std::span<const Weight> candidates);

}  // namespace manet::cluster
