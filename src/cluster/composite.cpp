#include "cluster/composite.h"

#include "util/assert.h"

namespace manet::cluster {

bool pareto_dominates(const Weight& a, const Weight& b) {
  bool strict = false;
  for (std::size_t i = 0; i < Weight::kMaxComponents; ++i) {
    if (a.v[i] > b.v[i]) {
      return false;
    }
    if (a.v[i] < b.v[i]) {
      strict = true;
    }
  }
  return strict;
}

void pareto_frontier(std::span<const Weight> candidates,
                     std::vector<std::uint8_t>& frontier) {
  frontier.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < candidates.size() && !dominated; ++j) {
      dominated = j != i && pareto_dominates(candidates[j], candidates[i]);
    }
    frontier[i] = dominated ? 0 : 1;
  }
}

std::size_t lex_min_index(std::span<const Weight> candidates) {
  MANET_CHECK(!candidates.empty(), "lex_min_index of empty candidate set");
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i] < candidates[best]) {
      best = i;
    }
  }
  return best;
}

}  // namespace manet::cluster
