#include "cluster/validation.h"

#include <sstream>

#include "util/assert.h"

namespace manet::cluster {

std::string ValidationReport::to_string() const {
  std::ostringstream oss;
  oss << "undecided=" << undecided
      << " head_pairs_in_range=" << head_pairs_in_range
      << " members_beyond_head_range=" << members_beyond_head_range
      << " members_of_non_head=" << members_of_non_head
      << " connected_nodes=" << connected_nodes;
  if (dead_nodes > 0) {
    oss << " dead_nodes=" << dead_nodes;
  }
  return oss.str();
}

ValidationReport validate_clusters(
    net::Network& network,
    const std::vector<const WeightedClusterAgent*>& agents, sim::Time t) {
  net::Network::AdjacencyScratch scratch;
  return validate_clusters(network, agents, t, scratch);
}

ValidationReport validate_clusters(
    net::Network& network,
    const std::vector<const WeightedClusterAgent*>& agents, sim::Time t,
    net::Network::AdjacencyScratch& scratch) {
  MANET_CHECK(agents.size() == network.size(),
              "agents/nodes size mismatch: " << agents.size() << " vs "
                                             << network.size());
  ValidationReport report;
  network.true_adjacency_into(t, scratch);
  const auto& adj = scratch;

  // Fault-injection runs crash and churn nodes; a dead node neither beacons
  // nor holds a role, so the invariants are evaluated over the survivors and
  // links between them. A dead clusterhead makes its members violators until
  // they re-affiliate — that is exactly the disruption the monitor measures.
  const auto alive = [&](net::NodeId id) { return network.node(id).alive(); };

  for (std::size_t i = 0; i < agents.size(); ++i) {
    if (!alive(static_cast<net::NodeId>(i))) {
      ++report.dead_nodes;
      continue;
    }
    for (const net::NodeId j : adj.neighbors(i)) {
      if (alive(j)) {
        ++report.connected_nodes;
        break;
      }
    }
    const auto* a = agents[i];
    switch (a->role()) {
      case Role::kUndecided:
        ++report.undecided;
        break;
      case Role::kHead:
        for (const net::NodeId j : adj.neighbors(i)) {
          if (j > i && alive(j) && agents[j]->role() == Role::kHead) {
            ++report.head_pairs_in_range;
          }
        }
        break;
      case Role::kMember: {
        const net::NodeId head = a->cluster_head();
        MANET_ASSERT(head != net::kInvalidNode, "member without head");
        if (!alive(head) || agents[head]->role() != Role::kHead) {
          ++report.members_of_non_head;
        }
        bool in_range = false;
        for (const net::NodeId j : adj.neighbors(i)) {
          if (j == head) {
            in_range = alive(head);
            break;
          }
        }
        if (!in_range) {
          ++report.members_beyond_head_range;
        }
        break;
      }
    }
  }
  return report;
}

}  // namespace manet::cluster
