#include "cluster/agent.h"

#include <algorithm>
#include <cmath>

#include "cluster/composite.h"
#include "net/energy.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/logging.h"

namespace manet::cluster {

WeightedClusterAgent::WeightedClusterAgent(const ClusterOptions& options)
    : options_(options), estimator_(options.mobility) {
  MANET_CHECK(options_.cci >= 0.0, "cci=" << options_.cci);
  if (options_.adaptive_bi) {
    MANET_CHECK(options_.adaptive_bi_min > 0.0 &&
                    options_.adaptive_bi_min <= options_.adaptive_bi_max,
                "adaptive BI bounds");
    MANET_CHECK(options_.adaptive_bi_ref > 0.0);
  }
}

void WeightedClusterAgent::on_attach(net::Node& node) {
  self_ = node.id();
  // Rival heads in range at once are few; pre-size so steady-state
  // contention tracking stays off the allocator.
  contention_.reserve(8);
  if (is_composite(options_.kind)) {
    // The Pareto-prefilter scratch is bounded by the neighbor count, whose
    // hard ceiling is the network population.
    const std::size_t n = node.network().size();
    head_scratch_.reserve(n);
    weight_scratch_.reserve(n);
    frontier_scratch_.reserve(n);
  }
}

void WeightedClusterAgent::on_reset(net::Node& node) {
  // Back to the boot configuration (§3.2: nodes start Cluster_Undecided
  // with M = 0); the sink records the deposition if we were a head.
  become_undecided(node.simulator().now());
  estimator_.reset();
  metric_ = 0.0;
  extra_ = {};
  extra_count_ = 0;
  gateway_ = false;
  decisions_ = 0;  // the boot-beacon guard applies again after recovery
}

Weight WeightedClusterAgent::neighbor_weight(
    const net::NeighborEntry& e) const {
  switch (options_.kind) {
    case WeightKind::kLowestId:
      return Weight{0.0, e.id};
    case WeightKind::kMaxConnectivity:
      return Weight{-static_cast<double>(e.degree), e.id};
    case WeightKind::kMobility:
    case WeightKind::kStaticWeight:
    case WeightKind::kCombined:
      // The sender computed and advertised its own metric.
      return Weight{e.weight, e.id};
    case WeightKind::kCci:
    case WeightKind::kSdDwca: {
      // Composite advertisement: primary metric plus the extra utility
      // components, in advertised significance order.
      Weight w{e.weight, e.id};
      for (std::uint8_t i = 0; i < e.extra_weight_count; ++i) {
        w.push(e.extra_weights[i]);
      }
      return w;
    }
  }
  return Weight{0.0, e.id};
}

void WeightedClusterAgent::refresh_metric(net::Node& node) {
  switch (options_.kind) {
    case WeightKind::kLowestId:
      metric_ = 0.0;
      break;
    case WeightKind::kMaxConnectivity:
      metric_ = -static_cast<double>(node.table().size());
      break;
    case WeightKind::kMobility:
      metric_ = estimator_.update(node.table(), node.simulator().now());
      break;
    case WeightKind::kStaticWeight:
      metric_ = options_.static_weight;
      break;
    case WeightKind::kCombined: {
      const double m =
          estimator_.update(node.table(), node.simulator().now());
      const double degree_penalty =
          std::abs(static_cast<double>(node.table().size()) -
                   options_.combined_ideal_degree);
      metric_ = options_.combined_mobility_weight * m +
                options_.combined_degree_weight * degree_penalty;
      break;
    }
    case WeightKind::kCci: {
      // Combined Closeness Index: the primary utility is closeness of the
      // degree to the ideal; among equally-close candidates the calmer node
      // (lower saturating mobility utility) wins, then the id.
      const double m = estimator_.update(node.table(), node.simulator().now());
      metric_ = deviation_utility(static_cast<double>(node.table().size()),
                                  options_.combined_ideal_degree);
      extra_[0] = saturating_utility(m, options_.composite_mobility_ref);
      extra_count_ = 1;
      break;
    }
    case WeightKind::kSdDwca: {
      // SD_DWCA: a normalized stability / degree / residual-energy blend as
      // the primary utility, with the raw energy deficit as the tie-break
      // (among equally-blended candidates the fuller battery serves).
      const double m = estimator_.update(node.table(), node.simulator().now());
      const double stability =
          saturating_utility(m, options_.composite_mobility_ref);
      const double ideal = options_.combined_ideal_degree;
      const double degree_dev = saturating_utility(
          deviation_utility(static_cast<double>(node.table().size()), ideal),
          ideal > 0.0 ? ideal : 1.0);
      const double energy_deficit = complement_utility(
          options_.energy != nullptr ? options_.energy->residual_ratio(self_)
                                     : 1.0);
      metric_ = options_.combined_mobility_weight * stability +
                options_.combined_degree_weight * degree_dev +
                options_.composite_energy_weight * energy_deficit;
      extra_[0] = energy_deficit;
      extra_count_ = 1;
      break;
    }
  }
}

const net::NeighborEntry* WeightedClusterAgent::best_head(
    const std::vector<net::NeighborEntry>& entries) const {
  if (!is_composite(options_.kind)) {
    const net::NeighborEntry* best = nullptr;
    for (const net::NeighborEntry& e : entries) {
      if (e.role != net::AdvertRole::kHead) {
        continue;
      }
      if (best == nullptr || neighbor_weight(e) < neighbor_weight(*best)) {
        best = &e;
      }
    }
    return best;
  }
  // Composite kinds run the STELLAR election idiom: collect the advertised
  // utility vectors, narrow to the Pareto frontier, then take the
  // lexicographic minimum with the id as the final tie-break. The frontier
  // is a pure prefilter — the lexicographic minimum is always non-dominated
  // (test_weight_properties pins the equivalence) — so Theorem 1's
  // totally-ordered-weight argument carries over unchanged.
  head_scratch_.clear();
  weight_scratch_.clear();
  for (const net::NeighborEntry& e : entries) {
    if (e.role == net::AdvertRole::kHead) {
      head_scratch_.push_back(&e);
      weight_scratch_.push_back(neighbor_weight(e));
    }
  }
  if (head_scratch_.empty()) {
    return nullptr;
  }
  pareto_frontier(weight_scratch_, frontier_scratch_);
  std::size_t best = weight_scratch_.size();
  for (std::size_t i = 0; i < weight_scratch_.size(); ++i) {
    if (frontier_scratch_[i] != 0 &&
        (best == weight_scratch_.size() ||
         weight_scratch_[i] < weight_scratch_[best])) {
      best = i;
    }
  }
  MANET_ASSERT(best < weight_scratch_.size());
  return head_scratch_[best];
}

void WeightedClusterAgent::set_state(sim::Time t, Role role,
                                     net::NodeId head) {
  const Role old_role = role_;
  const net::NodeId old_head = head_;
  role_ = role;
  head_ = head;
  if (options_.sink != nullptr) {
    if (old_role != role_) {
      options_.sink->on_role_change(t, self_, old_role, role_);
    }
    if (old_head != head_) {
      options_.sink->on_affiliation_change(t, self_, old_head, head_);
    }
  }
}

void WeightedClusterAgent::become_head(sim::Time t) {
  undecided_rounds_ = 0;
  set_state(t, Role::kHead, self_);
}

void WeightedClusterAgent::become_member(sim::Time t, net::NodeId head) {
  MANET_ASSERT(head != net::kInvalidNode && head != self_);
  undecided_rounds_ = 0;
  contention_.clear();
  set_state(t, Role::kMember, head);
}

void WeightedClusterAgent::become_undecided(sim::Time t) {
  contention_.clear();
  set_state(t, Role::kUndecided, net::kInvalidNode);
}

void WeightedClusterAgent::decide_plain(
    net::Node& node, const std::vector<net::NeighborEntry>& entries) {
  // Original Lowest-ID [4, 5]: every round, the lowest weight in the closed
  // neighborhood is the clusterhead; everyone else attaches to the best
  // advertised head. No damping — this is the churn LCC was invented to fix.
  if (decisions_ <= 1) {
    return;  // boot beacon: the table has not seen a full round yet
  }
  const sim::Time now = node.simulator().now();
  const Weight mine = weight();
  bool lowest = true;
  for (const net::NeighborEntry& e : entries) {
    if (neighbor_weight(e) < mine) {
      lowest = false;
      break;
    }
  }
  if (lowest) {
    become_head(now);
    return;
  }
  const net::NeighborEntry* head = best_head(entries);
  if (head != nullptr) {
    become_member(now, head->id);
  } else {
    // A lower-weight neighbor exists but no head is audible: that neighbor
    // declined the role (it defers to someone even lower, out of our
    // range), so serve as head ourselves — the classical reading of
    // "the lowest-ID node a node hears is its clusterhead, unless it
    // gives up its role" [4, 5].
    become_head(now);
  }
}

void WeightedClusterAgent::decide(net::Node& node) {
  ++decisions_;
  const sim::Time now = node.simulator().now();
  // Iterates the table's flat entry array directly (already ascending by
  // id). Every path below only reads the table, so the reference is stable.
  const std::vector<net::NeighborEntry>& entries = node.table().entries();

  std::size_t heads_in_range = 0;
  for (const net::NeighborEntry& e : entries) {
    if (e.role == net::AdvertRole::kHead) {
      ++heads_in_range;
    }
  }

  if (!options_.lcc) {
    decide_plain(node, entries);
  } else {
    const Weight mine = weight();
    switch (role_) {
      case Role::kMember: {
        const net::NeighborEntry* my_head = node.table().find(head_);
        if (my_head != nullptr && my_head->role == net::AdvertRole::kHead) {
          // LCC rule: stay put even if a "better" clusterhead is in range.
          break;
        }
        // Lost the clusterhead: reaffiliate if possible, else fall through
        // to election.
        const net::NeighborEntry* head = best_head(entries);
        if (head != nullptr) {
          become_member(now, head->id);
          break;
        }
        become_undecided(now);
        [[fallthrough]];
      }
      case Role::kUndecided: {
        if (role_ != Role::kUndecided) {  // reaffiliated above
          break;
        }
        // The very first beacon goes out before a full listen interval, so
        // the table may be empty merely because the node just booted;
        // electing now would make the fastest clock, not the lowest weight,
        // the clusterhead.
        if (decisions_ <= 1) {
          break;
        }
        // Joining an existing cluster always beats founding a new one
        // (keeps clusterheads non-adjacent and changes minimal).
        const net::NeighborEntry* head = best_head(entries);
        if (head != nullptr) {
          become_member(now, head->id);
          break;
        }
        // DMAC/DCA-style staged election: the lowest weight among the
        // still-undecided neighborhood claims the role; everyone else
        // waits for it (paper §3.2: lowest M, ids breaking ties). The
        // stall cap forces progress if dynamic weights keep reshuffling
        // the local order (mutually-stale adverts can briefly make two
        // nodes each believe the other is lower).
        bool lower_undecided = false;
        for (const net::NeighborEntry& e : entries) {
          if (e.role == net::AdvertRole::kUndecided &&
              neighbor_weight(e) < mine) {
            lower_undecided = true;
            break;
          }
        }
        if (lower_undecided && undecided_rounds_ < kUndecidedStallRounds) {
          ++undecided_rounds_;
          break;
        }
        become_head(now);
        break;
      }
      case Role::kHead: {
        // Track continuous contact with rival clusterheads; resolve those
        // whose contact has outlasted the CCI (paper §3.2: deferral allows
        // "incidental contacts between passing nodes" to pass by).
        // `contention_` stays ascending by rival id: `entries` is already
        // sorted, so new rivals append/insert in order via lower_bound.
        for (const net::NeighborEntry& e : entries) {
          if (e.role == net::AdvertRole::kHead) {
            const auto it = std::lower_bound(
                contention_.begin(), contention_.end(), e.id,
                [](const auto& c, net::NodeId id) { return c.first < id; });
            if (it == contention_.end() || it->first != e.id) {
              contention_.insert(it, {e.id, now});
            }
          }
        }
        // Forget rivals that left range or stopped being heads.
        for (auto it = contention_.begin(); it != contention_.end();) {
          const net::NeighborEntry* e = node.table().find(it->first);
          if (e == nullptr || e->role != net::AdvertRole::kHead) {
            // An incidental contact that passed by without maturing — the
            // case the CCI exists for. Trace it as a closed window.
            if (options_.obs != nullptr && options_.obs->trace != nullptr) {
              options_.obs->trace->complete(obs::TraceSink::kNodePid,
                                            static_cast<int>(self_),
                                            "cci.window", it->second, now,
                                            "rival", it->first);
            }
            it = contention_.erase(it);
          } else {
            ++it;
          }
        }
        // Among matured contenders, the lowest weight keeps the role. The
        // paper triggers reclustering only "if the nodes are in
        // transmission range of each other even after the CCI timer has
        // expired" — so the rival must also be *fresh* (heard within the
        // last beacon interval), not a table entry idling toward its
        // timeout after the rival already left range.
        const double fresh_horizon =
            node.network().params().broadcast_interval * 1.25;
        const net::NeighborEntry* winner = nullptr;
        for (const auto& [id, since] : contention_) {
          if (now - since + 1e-9 < options_.cci) {
            // Head-vs-head contact tolerated because the CCI has not
            // expired (one deferral per rival per decision round).
            if (options_.obs != nullptr) {
              options_.obs->cci_deferral->inc();
            }
            continue;  // still within the contention interval
          }
          const net::NeighborEntry* e = node.table().find(id);
          MANET_ASSERT(e != nullptr);
          if (e->last_heard < now - fresh_horizon) {
            continue;  // likely already out of range
          }
          if (neighbor_weight(*e) < mine &&
              (winner == nullptr ||
               neighbor_weight(*e) < neighbor_weight(*winner))) {
            winner = e;
          }
        }
        if (winner != nullptr) {
          if (options_.obs != nullptr) {
            options_.obs->cci_resolved->inc();
            if (options_.obs->trace != nullptr) {
              // Close every open window: become_member clears them all.
              // The one that matured into this resignation is named apart.
              for (const auto& [id, since] : contention_) {
                options_.obs->trace->complete(
                    obs::TraceSink::kNodePid, static_cast<int>(self_),
                    id == winner->id ? "cci.resigned" : "cci.window", since,
                    now, "rival", id);
              }
            }
          }
          become_member(now, winner->id);
        }
        break;
      }
    }
  }

  gateway_ = role_ == Role::kMember && heads_in_range >= 2;
}

void WeightedClusterAgent::maybe_adapt_beacon(net::Node& node) {
  if (!options_.adaptive_bi) {
    return;
  }
  // Map M -> beacon interval: M = 0 gives the slowest beat, M = ref the
  // geometric midpoint, large M approaches the fastest beat. The slow end
  // is clamped safely below the neighbor timeout TP: beaconing slower than
  // TP would make neighbors expire *between* beacons and churn the tables
  // (and with them the clustering) catastrophically.
  const double lo = options_.adaptive_bi_min;
  const double hi =
      std::min(options_.adaptive_bi_max,
               0.8 * node.network().params().neighbor_timeout);
  const double frac = options_.adaptive_bi_ref /
                      (options_.adaptive_bi_ref + std::max(metric_, 0.0));
  node.set_beacon_period(lo + std::max(hi - lo, 0.0) * frac);
}

void WeightedClusterAgent::on_beacon(net::Node& node, net::HelloPacket& out) {
  refresh_metric(node);
  decide(node);
  out.weight = metric_;
  out.extra_weights = extra_;
  out.extra_weight_count = extra_count_;
  out.role = to_advert(role_);
  out.cluster_head = head_;
  maybe_adapt_beacon(node);
}

}  // namespace manet::cluster
