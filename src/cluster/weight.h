// Totally ordered clustering weights (lower wins), following the DCA
// generalization [2] the paper invokes in Theorem 1: the effective weight is
// the lexicographic pair {metric, id}, so even when metrics tie (e.g. two
// fresh nodes with M = 0) the order is total and the Lowest-ID rule is the
// tie-break — exactly the paper's augmented weight {M, ID}.
#pragma once

#include <compare>
#include <string_view>

#include "net/types.h"

namespace manet::cluster {

struct Weight {
  double metric = 0.0;
  net::NodeId id = net::kInvalidNode;

  friend constexpr auto operator<=>(const Weight&, const Weight&) = default;
};

/// Which quantity fills Weight::metric.
enum class WeightKind {
  kLowestId,         // metric = 0 for everyone: pure Lowest-ID [4, 5]
  kMaxConnectivity,  // metric = -degree: highest-degree wins [5]
  kMobility,         // metric = aggregate local mobility M: MOBIC (this paper)
  kStaticWeight,     // metric = externally assigned constant: DCA [2]
  kCombined,         // metric = wm*M + wd*|degree - ideal|: WCA-style blend
};

inline std::string_view weight_kind_name(WeightKind k) {
  switch (k) {
    case WeightKind::kLowestId:
      return "lowest_id";
    case WeightKind::kMaxConnectivity:
      return "max_connectivity";
    case WeightKind::kMobility:
      return "mobic";
    case WeightKind::kStaticWeight:
      return "dca_static";
    case WeightKind::kCombined:
      return "combined";
  }
  return "?";
}

}  // namespace manet::cluster
