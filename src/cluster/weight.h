// Totally ordered clustering weights (lower wins), following the DCA
// generalization [2] the paper invokes in Theorem 1: any totally ordered
// weight yields a correct distributed election, so the effective weight is a
// fixed-capacity lexicographic utility vector whose final tie-break is the
// node id — the paper's augmented weight {M, ID} is the single-component
// instance. Composite protocols (CCI, SD_DWCA) append extra utility
// components; unused slots stay 0.0 so comparison over the padded array is
// exactly the legacy {metric, id} order for every scalar protocol (golden
// hashes are bit-identical).
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "net/types.h"

namespace manet::cluster {

struct Weight {
  /// Primary metric + up to 3 extra utility components (matches
  /// net::HelloPacket::kMaxExtraWeights + 1 so every advertised vector fits).
  static constexpr std::size_t kMaxComponents = 4;

  /// Utility components, most significant first; lower is better. Slots at
  /// index >= n are 0.0 and still semantic: a shorter vector compares as if
  /// padded with zeros.
  std::array<double, kMaxComponents> v{};
  /// How many components are in use (metadata for introspection/serialization
  /// only — comparison always runs over the padded array).
  std::uint8_t n = 1;
  net::NodeId id = net::kInvalidNode;

  constexpr Weight() = default;
  /// The legacy scalar weight {metric, id}; all existing call sites build
  /// this shape.
  constexpr Weight(double metric, net::NodeId node) : v{metric}, id(node) {}

  constexpr double metric() const { return v[0]; }

  /// Appends a lower-significance component (no-op past capacity; callers
  /// advertise at most kMaxComponents - 1 extras).
  constexpr void push(double component) {
    if (n < kMaxComponents) {
      v[n++] = component;
    }
  }

  /// Lexicographic over the padded component array, then the node id — the
  /// strict multi-level tie-break chain. Returns partial_ordering like the
  /// old defaulted operator on {double metric, NodeId id}: NaN components
  /// compare unordered (simulation metrics are never NaN), everything else
  /// is total, and single-component weights order bit-identically to the
  /// legacy pair.
  friend constexpr std::partial_ordering operator<=>(const Weight& a,
                                                     const Weight& b) {
    for (std::size_t i = 0; i < kMaxComponents; ++i) {
      if (const auto c = a.v[i] <=> b.v[i]; c != 0) {
        return c;
      }
    }
    return a.id <=> b.id;
  }

  friend constexpr bool operator==(const Weight& a, const Weight& b) {
    return a.v == b.v && a.id == b.id;
  }
};

/// Which quantities fill Weight's components.
enum class WeightKind {
  kLowestId,         // metric = 0 for everyone: pure Lowest-ID [4, 5]
  kMaxConnectivity,  // metric = -degree: highest-degree wins [5]
  kMobility,         // metric = aggregate local mobility M: MOBIC (this paper)
  kStaticWeight,     // metric = externally assigned constant: DCA [2]
  kCombined,         // metric = wm*M + wd*|degree - ideal|: WCA-style blend
  kCci,        // {|degree - ideal|, mobility utility}: Combined Closeness
               // Index (arXiv:1104.5705), composite lexicographic weight
  kSdDwca,     // {wm*u(M) + wd*u(|deg-ideal|) + we*(1-E/E0), 1-E/E0}:
               // stability/degree/residual-energy blend (arXiv:1105.5521)
};

/// True for kinds whose weight carries extra utility components beyond the
/// primary metric (these advertise the extras in Hellos and elect through
/// the Pareto-frontier prefilter).
constexpr bool is_composite(WeightKind k) {
  return k == WeightKind::kCci || k == WeightKind::kSdDwca;
}

inline std::string_view weight_kind_name(WeightKind k) {
  switch (k) {
    case WeightKind::kLowestId:
      return "lowest_id";
    case WeightKind::kMaxConnectivity:
      return "max_connectivity";
    case WeightKind::kMobility:
      return "mobic";
    case WeightKind::kStaticWeight:
      return "dca_static";
    case WeightKind::kCombined:
      return "combined";
    case WeightKind::kCci:
      return "cci";
    case WeightKind::kSdDwca:
      return "sd_dwca";
  }
  return "?";
}

}  // namespace manet::cluster
