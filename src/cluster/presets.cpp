#include "cluster/presets.h"

#include <cstdlib>

#include "util/assert.h"
#include "util/strings.h"

namespace manet::cluster {

ClusterOptions mobic_options(ClusterEventSink* sink, double cci) {
  ClusterOptions o;
  o.kind = WeightKind::kMobility;
  o.lcc = true;
  o.cci = cci;
  o.sink = sink;
  return o;
}

ClusterOptions lowest_id_lcc_options(ClusterEventSink* sink) {
  ClusterOptions o;
  o.kind = WeightKind::kLowestId;
  o.lcc = true;
  o.cci = 0.0;  // LCC resolves clusterhead contacts immediately
  o.sink = sink;
  return o;
}

ClusterOptions lowest_id_plain_options(ClusterEventSink* sink) {
  ClusterOptions o;
  o.kind = WeightKind::kLowestId;
  o.lcc = false;
  o.cci = 0.0;
  o.sink = sink;
  return o;
}

ClusterOptions max_connectivity_options(ClusterEventSink* sink) {
  ClusterOptions o;
  o.kind = WeightKind::kMaxConnectivity;
  o.lcc = true;
  o.cci = 0.0;
  o.sink = sink;
  return o;
}

ClusterOptions dca_options(double weight, ClusterEventSink* sink) {
  ClusterOptions o;
  o.kind = WeightKind::kStaticWeight;
  o.static_weight = weight;
  o.lcc = true;
  o.cci = 0.0;
  o.sink = sink;
  return o;
}

ClusterOptions mobic_history_options(double ewma_alpha,
                                     ClusterEventSink* sink, double cci) {
  ClusterOptions o = mobic_options(sink, cci);
  o.mobility.ewma_alpha = ewma_alpha;
  return o;
}

ClusterOptions combined_options(double mobility_weight, double degree_weight,
                                double ideal_degree,
                                ClusterEventSink* sink) {
  ClusterOptions o = mobic_options(sink);
  o.kind = WeightKind::kCombined;
  o.combined_mobility_weight = mobility_weight;
  o.combined_degree_weight = degree_weight;
  o.combined_ideal_degree = ideal_degree;
  return o;
}

ClusterOptions cci_options(ClusterEventSink* sink) {
  ClusterOptions o = mobic_options(sink);
  o.kind = WeightKind::kCci;
  return o;
}

ClusterOptions sd_dwca_options(ClusterEventSink* sink) {
  ClusterOptions o = mobic_options(sink);
  o.kind = WeightKind::kSdDwca;
  return o;
}

ClusterOptions options_by_name(std::string_view name,
                               ClusterEventSink* sink) {
  const std::string n = util::to_lower(name);
  if (n == "mobic") {
    return mobic_options(sink);
  }
  if (n == "lowest_id" || n == "lowest_id_lcc" || n == "lcc") {
    return lowest_id_lcc_options(sink);
  }
  if (n == "lowest_id_plain" || n == "plain") {
    return lowest_id_plain_options(sink);
  }
  if (n == "max_connectivity" || n == "max_conn" || n == "degree") {
    return max_connectivity_options(sink);
  }
  if (n == "combined" || n == "wca") {
    return combined_options(1.0, 1.0, 8.0, sink);
  }
  if (n == "cci") {
    return cci_options(sink);
  }
  if (n == "sd_dwca" || n == "sddwca") {
    return sd_dwca_options(sink);
  }
  if (util::starts_with(n, "mobic_history:")) {
    const std::string alpha_str = n.substr(std::string("mobic_history:").size());
    char* end = nullptr;
    const double alpha = std::strtod(alpha_str.c_str(), &end);
    MANET_CHECK(end == alpha_str.c_str() + alpha_str.size() && alpha > 0.0 &&
                    alpha <= 1.0,
                "bad history alpha in '" << name << "'");
    return mobic_history_options(alpha, sink);
  }
  MANET_CHECK(false, "unknown clustering algorithm: " << name);
  return {};  // unreachable
}

bool is_known_algorithm(std::string_view name) {
  try {
    options_by_name(name, nullptr);
    return true;
  } catch (const util::CheckError&) {
    return false;
  }
}

}  // namespace manet::cluster
