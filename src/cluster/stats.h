// Cluster stability accounting.
//
// ClusterStats implements the paper's stability metric CS — "the number of
// clusterhead changes in a given time period" (§4.1) — counted as every
// transition of a node into or out of Cluster_Head state after an optional
// warm-up window (the initial election is excluded by a warm-up of a few
// broadcast intervals). It also tracks reaffiliations (a member switching
// clusterheads) and clusterhead reign lifetimes.
//
// ClusterSampler periodically snapshots the role distribution (number of
// clusters = number of clusterheads, gateways, undecided count, cluster
// sizes) — the quantity behind the paper's Figure 4.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "cluster/agent.h"
#include "cluster/events.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/thread_role.h"

namespace manet::cluster {

class ClusterStats final : public ClusterEventSink {
 public:
  /// Events before `warmup` seconds are ignored (initial election).
  explicit ClusterStats(double warmup = 0.0);

  void on_role_change(sim::Time t, net::NodeId node, Role old_role,
                      Role new_role) MANET_COMMIT_ONLY override;
  void on_affiliation_change(sim::Time t, net::NodeId node,
                             net::NodeId old_head,
                             net::NodeId new_head) MANET_COMMIT_ONLY override;

  /// Closes open clusterhead reigns at simulation end (censored lifetimes).
  void finish(sim::Time end) MANET_COMMIT_ONLY;

  /// CS: clusterhead changes (gains + losses) after warm-up.
  std::uint64_t clusterhead_changes() const {
    return head_gains_ + head_losses_;
  }
  std::uint64_t head_gains() const { return head_gains_; }
  std::uint64_t head_losses() const { return head_losses_; }
  /// Members that moved between clusters (both ends valid, neither self).
  std::uint64_t reaffiliations() const { return reaffiliations_; }
  std::uint64_t role_changes() const { return role_changes_; }

  /// Reign duration of clusterheads (seconds), including censored reigns
  /// closed by finish().
  const util::RunningStats& head_lifetimes() const { return head_lifetimes_; }

  /// Cumulative clusterhead tenure per node (seconds served as head across
  /// all reigns, censored ones folded in by finish()), ascending by node
  /// id. Only nodes that ever served appear. The tenure-fairness metric
  /// (Jain's index in RunResult::head_tenure_fairness) is computed from
  /// this.
  const std::vector<std::pair<net::NodeId, double>>& head_tenure() const {
    return head_tenure_;
  }

  /// Pre-sizes the per-node bookkeeping so mid-run reign/tenure inserts
  /// never reallocate (part of the steady-state zero-allocation contract).
  void reserve_nodes(std::size_t n) MANET_COMMIT_ONLY {
    reign_since_.reserve(n);
    head_tenure_.reserve(n);
  }

  double warmup() const { return warmup_; }

 private:
  double warmup_;
  std::uint64_t head_gains_ = 0;
  std::uint64_t head_losses_ = 0;
  std::uint64_t reaffiliations_ = 0;
  std::uint64_t role_changes_ = 0;
  util::RunningStats head_lifetimes_;
  /// Open clusterhead reigns: {node, reign start}, ascending by node id so
  /// finish() feeds censored lifetimes into the Welford accumulator in a
  /// hash-order-free, reproducible order.
  std::vector<std::pair<net::NodeId, sim::Time>> reign_since_;
  /// Cumulative head tenure per node, ascending by node id (see
  /// head_tenure()).
  std::vector<std::pair<net::NodeId, double>> head_tenure_;
  bool finished_ = false;

  void add_tenure(net::NodeId node, double seconds) MANET_COMMIT_ONLY;
};

/// Periodic role-distribution sampler driven by the simulator.
class ClusterSampler {
 public:
  /// `agents[i]` must correspond to node i and outlive the sampler.
  ClusterSampler(sim::Simulator& sim,
                 std::vector<const WeightedClusterAgent*> agents);

  /// Samples every `period` seconds in [first_at, until].
  void start(sim::Time first_at, sim::Time period, sim::Time until)
      MANET_COMMIT_ONLY;

  /// Takes one sample immediately (also usable standalone in tests).
  void sample_now() MANET_COMMIT_ONLY;

  std::size_t samples() const { return num_clusters_.count(); }
  /// Number of clusters (= clusterheads) per sample.
  const util::RunningStats& num_clusters() const { return num_clusters_; }
  const util::RunningStats& num_gateways() const { return num_gateways_; }
  const util::RunningStats& num_undecided() const { return num_undecided_; }
  /// Members per cluster (head itself included), per (cluster, sample).
  const util::RunningStats& cluster_sizes() const { return cluster_sizes_; }

 private:
  void tick() MANET_COMMIT_ONLY;

  sim::Simulator& sim_;
  std::vector<const WeightedClusterAgent*> agents_;
  sim::Time period_ = 0.0;
  sim::Time until_ = 0.0;
  util::RunningStats num_clusters_;
  util::RunningStats num_gateways_;
  util::RunningStats num_undecided_;
  util::RunningStats cluster_sizes_;
  /// Per-sample member counts indexed by clusterhead id: the sweep that
  /// feeds cluster_sizes_ runs in ascending head order (no hash order), and
  /// the buffer is reused so sampling stays allocation-free after the first
  /// tick.
  std::vector<std::size_t> sizes_scratch_;
};

}  // namespace manet::cluster
