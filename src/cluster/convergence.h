// Convergence monitoring for fault-injection runs: samples the Theorem-1
// validators on a fixed period and turns the resulting clean/disrupted
// signal into recovery-time and orphaned-member statistics. A "disruption"
// opens at the first fault observed while the clustering is clean and
// closes at the first clean sample afterwards; the elapsed time is the
// time-to-reconverge the resilience benchmark reports.
#pragma once

#include <vector>

#include "cluster/agent.h"
#include "cluster/validation.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/thread_role.h"

namespace manet::cluster {

class ConvergenceMonitor {
 public:
  struct Summary {
    /// Faults reported via note_fault().
    std::size_t faults_observed = 0;
    /// Validation samples taken, and how many were not clean.
    std::size_t samples = 0;
    std::size_t violation_samples = 0;
    /// Integral over time of "alive members affiliated with a head that is
    /// dead or no longer a head" — member-seconds spent orphaned.
    double orphaned_member_seconds = 0.0;
    /// Per-disruption time from first fault to first clean sample.
    util::RunningStats recovery;
    /// Disruptions still open when the run ended.
    std::size_t unrecovered_disruptions = 0;
  };

  /// `agents[i]` must correspond to node i of `network`; both must outlive
  /// the monitor.
  ConvergenceMonitor(sim::Simulator& sim, net::Network& network,
                     std::vector<const WeightedClusterAgent*> agents);

  /// Schedules periodic validation samples over [first_at, until].
  void start(sim::Time first_at, sim::Time period, sim::Time until)
      MANET_COMMIT_ONLY;

  /// Records a fault at time `t`. Opens a disruption window unless one is
  /// already open.
  void note_fault(sim::Time t) MANET_COMMIT_ONLY;

  /// Closes the run at `t_end`: open disruptions are counted as
  /// unrecovered. Idempotent per run.
  Summary finish(sim::Time t_end) MANET_COMMIT_ONLY;

  const Summary& summary() const { return summary_; }

 private:
  void sample() MANET_COMMIT_ONLY;

  sim::Simulator& sim_;
  net::Network& network_;
  std::vector<const WeightedClusterAgent*> agents_;
  /// Reused ground-truth adjacency buffers: after the first sample warms
  /// their capacity, the periodic validation path stays allocation-free
  /// (tests/test_zero_alloc.cpp pins this).
  net::Network::AdjacencyScratch scratch_;

  Summary summary_;
  sim::Time period_ = 0.0;
  sim::Time until_ = 0.0;
  bool disrupted_ = false;
  sim::Time disrupted_since_ = 0.0;
  sim::Time last_sample_ = 0.0;
  bool sampled_once_ = false;
};

}  // namespace manet::cluster
