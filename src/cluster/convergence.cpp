#include "cluster/convergence.h"

#include <utility>

#include "util/assert.h"

namespace manet::cluster {

ConvergenceMonitor::ConvergenceMonitor(
    sim::Simulator& sim, net::Network& network,
    std::vector<const WeightedClusterAgent*> agents)
    : sim_(sim), network_(network), agents_(std::move(agents)) {
  MANET_CHECK(agents_.size() == network_.size(),
              "agents/nodes size mismatch: " << agents_.size() << " vs "
                                             << network_.size());
}

void ConvergenceMonitor::start(sim::Time first_at, sim::Time period,
                               sim::Time until) {
  MANET_CHECK(period > 0.0, "sample period " << period);
  MANET_CHECK(until >= first_at,
              "sampling window [" << first_at << ", " << until << "]");
  period_ = period;
  until_ = until;
  sim_.schedule_at(first_at, [this] {
    MANET_ASSERT_COMMIT_ROLE();
    sample();
  });
}

void ConvergenceMonitor::note_fault(sim::Time t) {
  ++summary_.faults_observed;
  // Faults landing inside an open disruption extend it rather than opening
  // a second one: recovery is measured from the earliest unhealed fault.
  if (!disrupted_) {
    disrupted_ = true;
    disrupted_since_ = t;
  }
}

void ConvergenceMonitor::sample() {
  const sim::Time t = sim_.now();
  const ValidationReport report =
      validate_clusters(network_, agents_, t, scratch_);

  ++summary_.samples;
  if (!report.clean()) {
    ++summary_.violation_samples;
  }
  if (sampled_once_) {
    // Right-Riemann integral of the orphan count: each sample's value is
    // charged for the interval that ended at it.
    summary_.orphaned_member_seconds +=
        static_cast<double>(report.members_of_non_head) * (t - last_sample_);
  }
  last_sample_ = t;
  sampled_once_ = true;

  if (disrupted_ && report.clean()) {
    summary_.recovery.add(t - disrupted_since_);
    disrupted_ = false;
  }

  if (t + period_ <= until_) {
    sim_.schedule_in(period_, [this] {
    MANET_ASSERT_COMMIT_ROLE();
    sample();
  });
  }
}

ConvergenceMonitor::Summary ConvergenceMonitor::finish(sim::Time /*t_end*/) {
  if (disrupted_) {
    ++summary_.unrecovered_disruptions;
    disrupted_ = false;
  }
  return summary_;
}

}  // namespace manet::cluster
