// Cluster role state machine (paper §3.2): nodes start Cluster_Undecided,
// then become Cluster_Head or Cluster_Member; "gateway" is a derived
// property (a member that hears two or more clusterheads).
#pragma once

#include <string_view>

#include "net/hello.h"
#include "net/types.h"

namespace manet::cluster {

enum class Role : std::uint8_t {
  kUndecided = 0,
  kHead = 1,
  kMember = 2,
};

inline std::string_view role_name(Role r) {
  switch (r) {
    case Role::kUndecided:
      return "undecided";
    case Role::kHead:
      return "head";
    case Role::kMember:
      return "member";
  }
  return "?";
}

inline net::AdvertRole to_advert(Role r) {
  switch (r) {
    case Role::kUndecided:
      return net::AdvertRole::kUndecided;
    case Role::kHead:
      return net::AdvertRole::kHead;
    case Role::kMember:
      return net::AdvertRole::kMember;
  }
  return net::AdvertRole::kUndecided;
}

inline Role from_advert(net::AdvertRole r) {
  switch (r) {
    case net::AdvertRole::kUndecided:
      return Role::kUndecided;
    case net::AdvertRole::kHead:
      return Role::kHead;
    case net::AdvertRole::kMember:
      return Role::kMember;
  }
  return Role::kUndecided;
}

}  // namespace manet::cluster
