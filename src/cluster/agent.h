// The distributed 2-hop clustering engine (paper §3.2), parameterized by a
// totally ordered weight:
//
//   * WeightKind::kMobility + lcc + cci>0  ->  MOBIC (the paper)
//   * WeightKind::kLowestId + lcc + cci=0  ->  Lowest-ID, LCC variant [3]
//       (the baseline in every figure)
//   * WeightKind::kLowestId + !lcc          ->  original Lowest-ID [4, 5]
//   * WeightKind::kMaxConnectivity + lcc    ->  highest-degree baseline [5]
//   * WeightKind::kStaticWeight + lcc       ->  DCA-style generic weights [2]
//
// Execution model: once per broadcast interval, immediately before the Hello
// goes out, the node (1) refreshes its aggregate mobility metric from the
// received-power pairs in its neighbor table, (2) runs the clustering
// decision against its neighbors' advertised states, and (3) stamps
// {M, role, clusterhead} into the outgoing Hello — the sequencing of §3.2.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/events.h"
#include "cluster/types.h"
#include "cluster/weight.h"
#include "metrics/aggregate_mobility.h"
#include "net/agent.h"
#include "net/node.h"
#include "obs/hooks.h"

namespace manet::net {
class EnergyModel;
}

namespace manet::cluster {

struct ClusterOptions {
  WeightKind kind = WeightKind::kMobility;

  /// Least-Clusterhead-Change member rule [3]: a member that wanders into a
  /// better clusterhead's range does NOT trigger reclustering; only
  /// clusterhead-vs-clusterhead contact does. Disable for the original
  /// eager Lowest-ID.
  bool lcc = true;

  /// Cluster Contention Interval (seconds): how long two clusterheads must
  /// stay in range before the contest is resolved (paper: 4.0 s; MOBIC
  /// only — use 0 for immediate resolution as in Lowest-ID LCC).
  double cci = 4.0;

  /// Weight for WeightKind::kStaticWeight.
  double static_weight = 0.0;

  /// WeightKind::kCombined (WCA-style, generalizing DCA [2] with the
  /// paper's metric): metric = combined_mobility_weight * M +
  /// combined_degree_weight * |degree - combined_ideal_degree|.
  /// Prefers calm nodes that can serve about `ideal_degree` members.
  double combined_mobility_weight = 1.0;
  double combined_degree_weight = 1.0;
  double combined_ideal_degree = 8.0;

  /// Composite kinds (kCci, kSdDwca): half-utility reference of the
  /// saturating mobility transform u(M) = M / (M + ref) — the M value that
  /// maps to utility 0.5.
  double composite_mobility_ref = 10.0;
  /// kSdDwca: weight of the residual-energy deficit term (1 - E/E0).
  double composite_energy_weight = 1.0;
  /// kSdDwca residual-energy source (not owned; may be nullptr, meaning
  /// every node reads a full battery). scenario::run_scenario wires the
  /// run's EnergyModel in when the scenario enables energy.
  const net::EnergyModel* energy = nullptr;

  /// Aggregate-mobility estimator settings (WeightKind::kMobility).
  metrics::AggregateMobilityConfig mobility{};

  /// Event observer (not owned; may be nullptr).
  ClusterEventSink* sink = nullptr;

  /// Agent-internal observability (not owned; may be nullptr). When set,
  /// the counter fields must all be resolved; `obs->trace` may still be
  /// null (counters without spans).
  const obs::AgentHooks* obs = nullptr;

  /// §5 extension: scale the beacon interval with local mobility — mobile
  /// neighborhoods beacon faster, static ones slower.
  bool adaptive_bi = false;
  double adaptive_bi_min = 1.0;   // s
  double adaptive_bi_max = 4.0;   // s
  double adaptive_bi_ref = 10.0;  // M value mapping to the geometric mean
};

class WeightedClusterAgent final : public net::Agent {
 public:
  explicit WeightedClusterAgent(const ClusterOptions& options);

  // Protocol state (read by stats samplers, validators, routing).
  Role role() const { return role_; }
  /// This node's clusterhead: itself when head, kInvalidNode when undecided.
  net::NodeId cluster_head() const { return head_; }
  /// True if the last decision round saw >= 2 clusterheads in range while
  /// this node is a member.
  bool is_gateway() const { return gateway_; }
  /// Current metric value (M for MOBIC; 0 / -degree / static otherwise;
  /// the primary utility component for the composite kinds).
  double metric() const { return metric_; }
  /// The full comparison weight of this node: {metric, id} for the scalar
  /// kinds, the metric plus the extra utility components for kCci/kSdDwca.
  Weight weight() const {
    Weight w{metric_, self_};
    for (std::uint8_t i = 0; i < extra_count_; ++i) {
      w.push(extra_[i]);
    }
    return w;
  }

  std::uint64_t decisions() const { return decisions_; }

  // net::Agent interface.
  void on_attach(net::Node& node) MANET_COMMIT_ONLY override;
  void on_reset(net::Node& node) MANET_COMMIT_ONLY override;
  void on_beacon(net::Node& node, net::HelloPacket& out)
      MANET_COMMIT_ONLY override;

 private:
  Weight neighbor_weight(const net::NeighborEntry& e) const;
  void refresh_metric(net::Node& node);
  void decide(net::Node& node);
  void decide_plain(net::Node& node,
                    const std::vector<net::NeighborEntry>& entries);

  /// Returns the lowest-weight neighbor currently advertising Head, or
  /// nullptr.
  const net::NeighborEntry* best_head(
      const std::vector<net::NeighborEntry>& entries) const;

  // State transitions; emit sink events when state actually changes.
  void become_head(sim::Time t);
  void become_member(sim::Time t, net::NodeId head);
  void become_undecided(sim::Time t);
  void set_state(sim::Time t, Role role, net::NodeId head);

  void maybe_adapt_beacon(net::Node& node);

  ClusterOptions options_;
  net::NodeId self_ = net::kInvalidNode;
  Role role_ = Role::kUndecided;
  net::NodeId head_ = net::kInvalidNode;
  bool gateway_ = false;
  double metric_ = 0.0;
  /// Extra advertised utility components (composite kinds; count 0 for the
  /// scalar kinds, keeping their Hellos and weights bit-identical).
  std::array<double, net::HelloPacket::kMaxExtraWeights> extra_{};
  std::uint8_t extra_count_ = 0;
  metrics::AggregateMobilityEstimator estimator_;
  /// Scratch for the Pareto-prefiltered composite head election; reserved
  /// at attach so steady-state elections stay off the allocator.
  mutable std::vector<const net::NeighborEntry*> head_scratch_;
  mutable std::vector<Weight> weight_scratch_;
  mutable std::vector<std::uint8_t> frontier_scratch_;
  /// Head-vs-head contention: {contender id, first continuous contact time},
  /// ascending by id so every walk over the rivals is hash-order-free (a
  /// handful of entries at most; flat storage also keeps the hot loop out of
  /// node-per-insert allocation).
  std::vector<std::pair<net::NodeId, sim::Time>> contention_;
  std::uint64_t decisions_ = 0;
  /// Rounds spent waiting on a lower-weight undecided neighbor; bounded by
  /// kUndecidedStallRounds so dynamic weights cannot starve the election.
  std::uint32_t undecided_rounds_ = 0;
  static constexpr std::uint32_t kUndecidedStallRounds = 8;
};

}  // namespace manet::cluster
