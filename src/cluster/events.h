// Observer interface for clustering dynamics. The stats collector (cluster
// stability metric CS, reaffiliation counts, clusterhead lifetimes) hangs
// off these callbacks; agents invoke them on every state change.
#pragma once

#include <vector>

#include "cluster/types.h"
#include "net/types.h"
#include "sim/event_queue.h"
#include "util/thread_role.h"

namespace manet::cluster {

class ClusterEventSink {
 public:
  virtual ~ClusterEventSink() = default;

  /// Fired when a node's role changes (old_role != new_role).
  virtual void on_role_change(sim::Time t, net::NodeId node, Role old_role,
                              Role new_role) MANET_COMMIT_ONLY = 0;

  /// Fired when a node's clusterhead affiliation changes (including
  /// becoming/stopping being its own head). kInvalidNode = unaffiliated.
  virtual void on_affiliation_change(sim::Time t, net::NodeId node,
                                     net::NodeId old_head,
                                     net::NodeId new_head) MANET_COMMIT_ONLY = 0;
};

/// Discards all events.
class NullClusterEventSink final : public ClusterEventSink {
 public:
  void on_role_change(sim::Time, net::NodeId, Role, Role)
      MANET_COMMIT_ONLY override {}
  void on_affiliation_change(sim::Time, net::NodeId, net::NodeId,
                             net::NodeId) MANET_COMMIT_ONLY override {}
};

/// Forwards events to several sinks (stats collector + timeline recorder).
/// Null entries are allowed and skipped; sinks are not owned.
class FanoutClusterEventSink final : public ClusterEventSink {
 public:
  FanoutClusterEventSink() = default;
  explicit FanoutClusterEventSink(std::vector<ClusterEventSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void add(ClusterEventSink* sink) { sinks_.push_back(sink); }

  void on_role_change(sim::Time t, net::NodeId node, Role old_role,
                      Role new_role) MANET_COMMIT_ONLY override {
    for (auto* s : sinks_) {
      if (s != nullptr) {
        s->on_role_change(t, node, old_role, new_role);
      }
    }
  }
  void on_affiliation_change(sim::Time t, net::NodeId node,
                             net::NodeId old_head,
                             net::NodeId new_head) MANET_COMMIT_ONLY override {
    for (auto* s : sinks_) {
      if (s != nullptr) {
        s->on_affiliation_change(t, node, old_head, new_head);
      }
    }
  }

 private:
  std::vector<ClusterEventSink*> sinks_;
};

}  // namespace manet::cluster
