#include "cluster/obs_sink.h"

#include "util/assert.h"

namespace manet::cluster {

namespace {

constexpr sim::Time kNoReign = -1.0;

// Tenure buckets (seconds): sub-interval churn up to whole-run reigns.
std::vector<double> tenure_bounds() {
  return {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0};
}

// Cascade-depth buckets (number of coupled clusterhead changes).
std::vector<double> cascade_bounds() {
  return {1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0};
}

}  // namespace

ObsClusterSink::ObsClusterSink(obs::Registry& registry, double warmup,
                               double cascade_window, obs::TraceSink* trace)
    : warmup_(warmup),
      cascade_window_(cascade_window),
      elected_(registry.counter("ch.elected")),
      resigned_(registry.counter("ch.resigned")),
      changed_(registry.counter("ch.changed")),
      reaffiliation_(registry.counter("reaffiliation")),
      tenure_(registry.histogram("ch.tenure", tenure_bounds())),
      cascade_(registry.histogram("recluster.cascade_depth",
                                  cascade_bounds())),
      trace_(trace) {
  MANET_CHECK(warmup_ >= 0.0, "warmup=" << warmup_);
  MANET_CHECK(cascade_window_ > 0.0, "cascade_window=" << cascade_window_);
}

void ObsClusterSink::note_cascade_event(sim::Time t) {
  if (cascade_depth_ > 0 && t - cascade_last_ > cascade_window_) {
    flush_cascade();
  }
  ++cascade_depth_;
  cascade_last_ = t;
}

void ObsClusterSink::flush_cascade() {
  if (cascade_depth_ > 0) {
    cascade_->record(static_cast<double>(cascade_depth_));
    cascade_depth_ = 0;
  }
}

void ObsClusterSink::reserve_nodes(std::size_t n) {
  reign_since_.reserve(n);
}

void ObsClusterSink::close_reign(net::NodeId node, sim::Time end) {
  const sim::Time since = reign_since_[node];
  MANET_ASSERT(since >= 0.0, "closing a reign that never opened");
  reign_since_[node] = kNoReign;
  tenure_->record(end - since);
  if (trace_ != nullptr) {
    trace_->complete(obs::TraceSink::kNodePid, static_cast<int>(node),
                     "head", since, end);
  }
}

void ObsClusterSink::on_role_change(sim::Time t, net::NodeId node,
                                    Role old_role, Role new_role) {
  if (node >= reign_since_.size()) {
    reign_since_.resize(node + 1, kNoReign);
  }
  if (new_role == Role::kHead) {
    elected_->inc();
    reign_since_[node] = t;
  } else if (old_role == Role::kHead) {
    resigned_->inc();
    close_reign(node, t);
  }
  if (new_role == Role::kHead || old_role == Role::kHead) {
    if (t >= warmup_) {
      changed_->inc();
    }
    note_cascade_event(t);
  }
}

void ObsClusterSink::on_affiliation_change(sim::Time t, net::NodeId node,
                                           net::NodeId old_head,
                                           net::NodeId new_head) {
  if (t >= warmup_ && old_head != net::kInvalidNode &&
      new_head != net::kInvalidNode && old_head != node && new_head != node) {
    reaffiliation_->inc();
  }
}

void ObsClusterSink::finish(sim::Time end) {
  for (std::size_t node = 0; node < reign_since_.size(); ++node) {
    if (reign_since_[node] >= 0.0) {
      close_reign(static_cast<net::NodeId>(node), end);
    }
  }
  flush_cascade();
}

}  // namespace manet::cluster
