#!/usr/bin/env python3
"""Compare a perf_suite run against a checked-in baseline.

Usage:
    check_bench.py --baseline bench/BENCH_core.quick.json \
                   --current BENCH_core.json [--tolerance 0.2]

Exit status is non-zero when any workload regresses:

  * throughput (events_per_sec; sim_s_per_s where meaningful) below
    (1 - tolerance) x baseline — wall-clock-derived, so the tolerance
    absorbs machine noise (default 20%, the CI gate);
  * allocs_per_event above the baseline by more than an epsilon —
    allocation counts are deterministic, so any real increase means the
    zero-allocation work is eroding;
  * observability overhead: when the current run carries the
    fig3_full_run (metrics off) / fig3_obs_run (metrics on) pair, the
    instrumented run must keep at least (1 - OBS_OVERHEAD_LIMIT) of the
    uninstrumented throughput. This is an intra-run ratio — same machine,
    same moment — so its limit is much tighter than --tolerance.
  * result-cache speedup: the fig3_cached_rerun workload's cold_warm_ratio
    (cold simulation wall over warm cache-served wall, measured within one
    run) must stay >= MIN_CACHED_SPEEDUP. Like the obs pair this is an
    intra-run ratio, so it gates on any machine.
  * sharded scaling: each fig_scale_nN / fig_scale_nN_sharded pair yields
    the intra-run sharded/serial events_per_sec ratio. The gate is
    machine-aware via the recorded "sim_jobs": with >= 8 workers the
    N = 10k ratio must reach MIN_SHARDED_SPEEDUP; with >= 2 workers every
    ratio must stay above SHARDED_RATIO_FLOOR (sharding must never make a
    run pathologically slower); on a single-core box (sim_jobs == 1 after
    auto-detection) the ratios are reported but not gated. These rows are
    deliberately absent from the checked-in baseline — absolute scale
    throughput says more about the machine than the code.

Absolute wall_ms and RSS are reported but never gated: they say more
about the machine than the code.
"""

import argparse
import json
import sys

# Deterministic metrics get a tiny epsilon (counter jitter from the runtime
# is possible on the scenario workloads); throughput uses --tolerance.
ALLOC_EPSILON = 0.05

# Target for the metrics layer is < 3% (tests/test_zero_alloc.cpp and the
# design doc); the CI gate allows 5% to absorb scheduler noise within a run.
OBS_OVERHEAD_LIMIT = 0.05
OBS_PAIR = ("fig3_full_run", "fig3_obs_run")

# A warm (cache-served) fig3 re-run must beat the cold simulation by at
# least this factor — the sweep-farm cache's reason to exist.
MIN_CACHED_SPEEDUP = 10.0
CACHED_RERUN = "fig3_cached_rerun"

# Sharded scaling (fig_scale family). With a wide pool the N = 10k sharded
# run must clearly beat serial; with any pool at all it must never be
# pathologically slower than serial.
MIN_SHARDED_SPEEDUP = 2.0    # N = 10k, sim_jobs >= 8
SHARDED_RATIO_FLOOR = 0.7    # every N, sim_jobs >= 2
SCALE_NS = (50, 1000, 10000)
SPEEDUP_GATED_N = 10000

THROUGHPUT_KEYS = ("events_per_sec", "sim_s_per_s")


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    if "workloads" not in doc and "after" in doc:
        doc = doc["after"]  # before/after document: gate on the after side
    schema = doc.get("schema", "")
    if schema and not schema.startswith("manet-perf-core/"):
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return {w["name"]: w for w in doc["workloads"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional throughput drop (default 0.2)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue

        for key in THROUGHPUT_KEYS:
            b, c = base.get(key, 0.0), cur.get(key, 0.0)
            if b <= 0.0:
                continue  # not meaningful for this workload
            floor = (1.0 - args.tolerance) * b
            verdict = "FAIL" if c < floor else "ok"
            print(f"{name:22s} {key:16s} {b:12.4g} -> {c:12.4g}  "
                  f"({c / b:6.2%} of baseline) {verdict}")
            if c < floor:
                failures.append(
                    f"{name}: {key} {c:.4g} below floor {floor:.4g} "
                    f"(baseline {b:.4g}, tolerance {args.tolerance:.0%})")

        b_alloc = base.get("allocs_per_event", 0.0)
        c_alloc = cur.get("allocs_per_event", 0.0)
        alloc_ok = c_alloc <= b_alloc + ALLOC_EPSILON
        print(f"{name:22s} {'allocs_per_event':16s} {b_alloc:12.4g} -> "
              f"{c_alloc:12.4g}  {'ok' if alloc_ok else 'FAIL'}")
        if not alloc_ok:
            failures.append(
                f"{name}: allocs_per_event rose {b_alloc:.4g} -> {c_alloc:.4g}")

        print(f"{name:22s} {'wall_ms (info)':16s} "
              f"{base.get('wall_ms', 0.0):12.4g} -> "
              f"{cur.get('wall_ms', 0.0):12.4g}")

    off, on = (current.get(name) for name in OBS_PAIR)
    if off and on and off.get("events_per_sec", 0.0) > 0.0:
        ratio = on["events_per_sec"] / off["events_per_sec"]
        overhead = 1.0 - ratio
        verdict = "FAIL" if overhead > OBS_OVERHEAD_LIMIT else "ok"
        print(f"{'obs_overhead':22s} {'events_per_sec':16s} "
              f"{off['events_per_sec']:12.4g} -> {on['events_per_sec']:12.4g}  "
              f"({overhead:6.2%} overhead) {verdict}")
        if overhead > OBS_OVERHEAD_LIMIT:
            failures.append(
                f"obs overhead {overhead:.2%} exceeds "
                f"{OBS_OVERHEAD_LIMIT:.0%} ({OBS_PAIR[1]} vs {OBS_PAIR[0]})")

    rerun = current.get(CACHED_RERUN)
    if rerun is not None:
        ratio = rerun.get("cold_warm_ratio", 0.0)
        verdict = "FAIL" if ratio < MIN_CACHED_SPEEDUP else "ok"
        print(f"{CACHED_RERUN:22s} {'cold_warm_ratio':16s} "
              f"{MIN_CACHED_SPEEDUP:12.4g} <= {ratio:12.4g}  {verdict}")
        if ratio < MIN_CACHED_SPEEDUP:
            failures.append(
                f"{CACHED_RERUN}: cold/warm speedup {ratio:.4g} below "
                f"{MIN_CACHED_SPEEDUP:.4g}")

    for n in SCALE_NS:
        serial = current.get(f"fig_scale_n{n}")
        sharded = current.get(f"fig_scale_n{n}_sharded")
        if not serial or not sharded:
            continue
        base = serial.get("events_per_sec", 0.0)
        if base <= 0.0:
            continue
        jobs = int(sharded.get("sim_jobs", 1))
        ratio = sharded.get("events_per_sec", 0.0) / base
        if jobs >= 8 and n == SPEEDUP_GATED_N:
            need, gated = MIN_SHARDED_SPEEDUP, True
        elif jobs >= 2:
            need, gated = SHARDED_RATIO_FLOOR, True
        else:
            need, gated = 0.0, False
        verdict = "info" if not gated else ("FAIL" if ratio < need else "ok")
        print(f"{f'fig_scale_n{n}':22s} {'sharded/serial':16s} "
              f"{base:12.4g} -> {sharded.get('events_per_sec', 0.0):12.4g}  "
              f"({ratio:6.2f}x, sim_jobs={jobs}) {verdict}")
        if gated and ratio < need:
            failures.append(
                f"fig_scale_n{n}: sharded/serial events_per_sec ratio "
                f"{ratio:.2f} below {need:.2f} at sim_jobs={jobs}")

    if failures:
        print("\nPerformance regressions detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nAll workloads within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
