#!/usr/bin/env python3
"""manet-lint: determinism-contract static analysis for the MANET simulator.

The simulator's headline guarantees (golden-hash replay, byte-identical
output for any --jobs, zero steady-state allocations) rest on source-level
contracts that runtime tests can only probe, not prove:

  wall-clock      simulation code must never read the host clock; simulated
                  time comes from sim::Simulator. Wall-clock is allowed only
                  in the progress meter, the runner's run-timing, and in
                  bench/example/test drivers.
  global-rng      all randomness flows through util::Rng substreams; std::rand,
                  srand and std::random_device are banned outside util/rng.
  unordered-iter  iterating an unordered container feeds standard-library
                  hash order into elections / statistics; all iteration in
                  src/ must be over deterministically ordered containers.
  hot-path        files participating in the zero-allocation loop must not
                  introduce std::function (allocating, type-erasing; use
                  sim::InplaceEvent), naked `new`, or make_shared (refcount
                  block per call).
  io-discipline   direct stdout/stderr writes (std::cout/cerr, printf) are
                  banned outside util/ — simulation layers report through
                  util::Logger or streams passed in by the caller.

This is a tokenizer + per-rule engine, not a pile of regexes: comments,
string literals and preprocessor directives never produce findings, and the
unordered-iteration rule resolves container *declarations* (including
`using` aliases) across the whole scanned tree before judging loops.

Suppression syntax (same line or the line above the finding):

    // manet-lint: allow(<rule>): <non-empty justification>

A suppression without a justification is itself a finding. The total number
of suppressions under src/ is budgeted (see --count-suppressions /
--max-suppressions) and asserted by tests/lint so it can only shrink.

Usage:
    manet_lint.py [paths...]            # default: src/ under --root
    manet_lint.py --werror src          # exit 2 on any finding (CI gate)
    manet_lint.py --count-suppressions src
    manet_lint.py --max-suppressions 5 src
    manet_lint.py --list-rules

Self-contained: python3 stdlib only, no third-party imports.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

# Token kinds
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"
COMMENT = "comment"
PREPROC = "preproc"

_MULTI_PUNCT = (
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++",
    "--",
)


@dataclass
class Token:
    kind: str
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Tokenizes C++ source. Comments and preprocessor directives are kept
    as single tokens (rules skip them; the suppression scanner reads them)."""
    tokens: list[Token] = []
    i = 0
    n = len(source)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    def advance_lines(text: str) -> None:
        nonlocal line
        line += text.count("\n")

    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        start_line = line
        if c == "#" and at_line_start:
            # Preprocessor directive: runs to end of line, honoring \-splices.
            j = i
            while j < n:
                if source[j] == "\\" and j + 1 < n and source[j + 1] == "\n":
                    j += 2
                    continue
                if source[j] == "\n":
                    break
                j += 1
            text = source[i:j]
            tokens.append(Token(PREPROC, text, start_line))
            advance_lines(text)
            i = j
            continue
        at_line_start = False
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            j = source.find("\n", i)
            j = n if j == -1 else j
            tokens.append(Token(COMMENT, source[i:j], start_line))
            i = j
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            j = n if j == -1 else j + 2
            text = source[i:j]
            tokens.append(Token(COMMENT, text, start_line))
            advance_lines(text)
            i = j
            continue
        if c == "R" and source.startswith('R"', i):
            # Raw string literal: R"delim( ... )delim"
            k = source.find("(", i + 2)
            if k != -1:
                delim = source[i + 2:k]
                close = ")" + delim + '"'
                j = source.find(close, k + 1)
                j = n if j == -1 else j + len(close)
                text = source[i:j]
                tokens.append(Token(STRING, text, start_line))
                advance_lines(text)
                i = j
                continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            tokens.append(Token(STRING if quote == '"' else CHAR,
                                source[i:j], start_line))
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token(IDENT, source[i:j], start_line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            while j < n and (source[j].isalnum() or source[j] in "._'"
                             or (source[j] in "+-"
                                 and source[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token(NUMBER, source[i:j], start_line))
            i = j
            continue
        for p in _MULTI_PUNCT:
            if source.startswith(p, i):
                tokens.append(Token(PUNCT, p, start_line))
                i += len(p)
                break
        else:
            tokens.append(Token(PUNCT, c, start_line))
            i += 1
    return tokens


def code_tokens(tokens: list[Token]) -> list[Token]:
    """Tokens with comments / preprocessor directives stripped — what the
    rules actually inspect."""
    return [t for t in tokens if t.kind not in (COMMENT, PREPROC)]


# ---------------------------------------------------------------------------
# Findings and suppressions
# ---------------------------------------------------------------------------


@dataclass
class Finding:
    path: str       # repo-relative, forward slashes
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    path: str
    line: int
    rule: str
    justification: str


_ALLOW_MARK = "manet-lint: allow("


def scan_suppressions(path: str, tokens: list[Token]) -> tuple[
        list[Suppression], list[Finding]]:
    """Parses `// manet-lint: allow(<rule>): <justification>` comments.
    Malformed suppressions (no closing paren, empty justification) are
    reported as findings of the pseudo-rule `suppression`."""
    sups: list[Suppression] = []
    bad: list[Finding] = []
    for t in tokens:
        if t.kind != COMMENT:
            continue
        pos = t.text.find(_ALLOW_MARK)
        if pos == -1:
            continue
        rest = t.text[pos + len(_ALLOW_MARK):]
        close = rest.find(")")
        if close == -1:
            bad.append(Finding(path, t.line, "suppression",
                               "malformed suppression: missing ')'"))
            continue
        rule = rest[:close].strip()
        tail = rest[close + 1:].lstrip()
        if not tail.startswith(":") or not tail[1:].strip():
            bad.append(Finding(
                path, t.line, "suppression",
                f"suppression for '{rule}' lacks a justification "
                "(syntax: // manet-lint: allow(rule): why)"))
            continue
        sups.append(Suppression(path, t.line, rule, tail[1:].strip()))
    return sups, bad


def apply_suppressions(findings: list[Finding],
                       sups: list[Suppression]) -> list[Finding]:
    """A suppression on line L silences matching findings on L and L+1
    (i.e. it may sit on the offending line or on its own line above)."""
    silenced = {(s.rule, s.line) for s in sups}
    out = []
    for f in findings:
        if (f.rule, f.line) in silenced or (f.rule, f.line - 1) in silenced:
            continue
        out.append(f)
    return out


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _path_has_prefix(path: str, prefixes: tuple[str, ...]) -> bool:
    return any(path.startswith(p) for p in prefixes)


def _is_member_access(tokens: list[Token], i: int) -> bool:
    """True if tokens[i] is reached via `.` or `->` (a member, not a free
    function / global)."""
    return i > 0 and tokens[i - 1].text in (".", "->")


def _is_std_qualified(tokens: list[Token], i: int) -> bool:
    return (i >= 2 and tokens[i - 1].text == "::"
            and tokens[i - 2].text == "std")


# Keywords a call expression can directly follow; any other preceding
# identifier means tokens[i] is being *declared* (`double time() const`),
# not called.
_CALL_CONTEXT_KEYWORDS = ("return", "co_return", "co_yield", "throw",
                          "case", "else", "do")


def _is_call(tokens: list[Token], i: int) -> bool:
    if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
        return False
    if i > 0 and tokens[i - 1].kind == IDENT \
            and tokens[i - 1].text not in _CALL_CONTEXT_KEYWORDS:
        return False  # `Type name(` — a declaration, not a call
    return True


@dataclass
class Rule:
    name: str
    description: str
    # Findings only in files matching one of these prefixes ('' = everywhere).
    only_under: tuple[str, ...] = ("",)
    # ...but never in files matching one of these.
    allow_under: tuple[str, ...] = ()

    def applies(self, path: str) -> bool:
        return (_path_has_prefix(path, self.only_under)
                and not _path_has_prefix(path, self.allow_under))

    def check(self, path: str, toks: list[Token],
              ctx: "TreeContext") -> list[Finding]:
        raise NotImplementedError


@dataclass
class TreeContext:
    """Cross-file facts gathered in a first pass over the whole scanned
    tree (declarations live in headers, loops in .cpp files)."""
    unordered_vars: set[str] = field(default_factory=set)
    unordered_aliases: set[str] = field(default_factory=set)
    # thread-role facts: qualified-name chain -> FnInfo, plus an index by
    # base name for call resolution. The reachability result is computed
    # lazily (once) and cached as a path -> findings table.
    fns: dict = field(default_factory=dict)
    fns_by_name: dict = field(default_factory=dict)
    role_conflicts: list = field(default_factory=list)
    thread_role_table: dict | None = None


_UNORDERED_TYPES = ("unordered_map", "unordered_set", "unordered_multimap",
                    "unordered_multiset")


def _skip_template_args(toks: list[Token], i: int) -> int:
    """toks[i] == '<'; returns index one past the matching '>'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{"):
            return i  # malformed / not actually template args
        i += 1
    return i


def collect_unordered_decls(toks: list[Token], ctx: TreeContext) -> None:
    """Records variable / member names declared with an unordered container
    type, and `using X = std::unordered_...` aliases."""
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == IDENT and t.text in _UNORDERED_TYPES:
            # `using Alias = std::unordered_map<...>;`
            j = i - 1
            while j >= 0 and toks[j].text in ("::", "std"):
                j -= 1
            if j >= 1 and toks[j].text == "=" and toks[j - 1].kind == IDENT \
                    and j >= 2 and toks[j - 2].text == "using":
                ctx.unordered_aliases.add(toks[j - 1].text)
            if i + 1 < n and toks[i + 1].text == "<":
                k = _skip_template_args(toks, i + 1)
                # Optional cv/ref/ptr decorations, then the declared name.
                while k < n and toks[k].text in ("&", "*", "const"):
                    k += 1
                if k < n and toks[k].kind == IDENT and k + 1 < n \
                        and toks[k + 1].text in (";", "=", "{", ",", ")"):
                    ctx.unordered_vars.add(toks[k].text)
                i = k
                continue
        i += 1


def collect_alias_decls(toks: list[Token], ctx: TreeContext) -> None:
    """Second collection pass: `Alias name;` declarations for aliases found
    in the first pass."""
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind == IDENT and t.text in ctx.unordered_aliases:
            if i + 1 < n and toks[i + 1].kind == IDENT and i + 2 < n \
                    and toks[i + 2].text in (";", "=", "{"):
                ctx.unordered_vars.add(toks[i + 1].text)


# ---------------------------------------------------------------------------
# thread-role: cross-TU worker/commit reachability
# ---------------------------------------------------------------------------
#
# util/thread_role.h annotates functions with trailing role markers:
#
#   MANET_COMMIT_ONLY    mutates replay-visible state; commit thread only
#   MANET_WORKER_SAFE    worker entry point / shared read path: no call
#                        path from it may reach a commit-only function
#   MANET_ROLE_AGNOSTIC  manually-audited dynamic dispatch; trusted barrier
#
# The clang half (-Wthread-safety) proves per-TU that commit-only callees
# are only invoked with the commit capability held. This rule is the
# cross-TU half that also runs on gcc-only boxes: pass 1 parses every
# function definition/declaration (with a namespace/class scope stack) and
# the call sites inside each body, then a reachability walk from every
# worker-safe root reports any path to a commit-only sink with the full
# call chain. Worker-safe and role-agnostic callees act as barriers (the
# former is itself a checked root; the latter is trusted by contract).
#
# Known blind spots, by design: calls through function pointers /
# std::function values, and lambda bodies (attributed to the enclosing
# function — fine for event callbacks, unseen for closures shipped to
# workers; the worker entry points themselves are named functions here).
# Name resolution is qualifier-aware (`geom::distance(` only matches
# definitions whose scope chain ends in `geom`) but not type-aware: member
# calls match every method of that name, which is conservative — don't
# annotate collision-prone trivial getters commit-only.

_ROLE_MARKERS = {
    "MANET_COMMIT_ONLY": "commit-only",
    "MANET_WORKER_SAFE": "worker-safe",
    "MANET_ROLE_AGNOSTIC": "role-agnostic",
}

# Identifiers that can precede '(' without being a function name (control
# flow, casts, operators) — excluded both as candidate definitions and as
# recorded call sites.
_CTRL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "alignas", "noexcept", "assert", "defined",
    "new", "delete", "throw", "do", "else", "case", "goto", "using",
    "typedef", "operator", "template", "typename", "requires", "co_await",
    "co_return", "co_yield", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "this", "true", "false", "nullptr",
))

# Declarator trailer tokens between ')' and the body / terminator.
_TRAILER_SKIP = frozenset(("const", "noexcept", "override", "final", "try",
                           "volatile", "mutable", "&", "&&"))


def _is_macro_like(name: str) -> bool:
    """SCREAMING_CASE identifiers are macros (MANET_CHECK, MANET_ASSERT_*);
    they are neither function definitions nor resolvable calls."""
    return len(name) > 1 and name.isupper()


def _match_group(toks: list[Token], i: int) -> int:
    """toks[i] is '(' / '{' / '['; returns the index one past its match."""
    open_ = toks[i].text
    close = {"(": ")", "{": "}", "[": "]"}[open_]
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


@dataclass
class CallSite:
    name: str
    quals: tuple[str, ...]  # explicit qualifiers at the call (`geom::f(`)
    member: bool            # reached via '.' or '->'
    line: int


@dataclass
class FnInfo:
    key: tuple[str, ...]  # qualified name chain: scopes + explicit quals + name
    path: str             # file of the definition (or first declaration)
    line: int
    is_method: bool
    role: str | None = None
    role_path: str = ""
    role_line: int = 0
    has_body: bool = False
    calls: list[CallSite] = field(default_factory=list)

    def display(self) -> str:
        if len(self.key) >= 2:
            return "::".join(self.key[-2:])
        return self.key[-1]


def _parse_fn_declarator(toks: list[Token], open_paren: int):
    """toks[open_paren] == '(' directly preceded by an identifier. Returns
    (quals, name, name_line, role, role_line, body_open | None, resume)
    when the construct parses as a function declarator, else None."""
    n = len(toks)
    j = open_paren - 1
    name_tok = toks[j]
    name = name_tok.text
    if name in _CTRL_KEYWORDS or _is_macro_like(name):
        return None
    if j > 0 and toks[j - 1].text == "~":
        name = "~" + name
        j -= 1
    quals: list[str] = []
    while j >= 2 and toks[j - 1].text == "::" and toks[j - 2].kind == IDENT:
        quals.insert(0, toks[j - 2].text)
        j -= 2
    if quals and quals[0] == "std":
        return None
    close = _match_group(toks, open_paren) - 1  # index of ')'
    if close >= n - 1:
        return None
    k = close + 1
    role = None
    role_line = 0
    while k < n:
        tk = toks[k]
        tx = tk.text
        if tx in _TRAILER_SKIP:
            if tx == "noexcept" and k + 1 < n and toks[k + 1].text == "(":
                k = _match_group(toks, k + 1)
            else:
                k += 1
            continue
        if tk.kind == IDENT and tx in _ROLE_MARKERS:
            role = _ROLE_MARKERS[tx]
            role_line = tk.line
            k += 1
            continue
        if tk.kind == IDENT and _is_macro_like(tx):
            # Some other annotation macro, possibly with arguments.
            if k + 1 < n and toks[k + 1].text == "(":
                k = _match_group(toks, k + 1)
            else:
                k += 1
            continue
        if tx == "->":
            # Trailing return type: scan to the body or terminator.
            k += 1
            while k < n and toks[k].text not in ("{", ";", "="):
                if toks[k].text == "(":
                    k = _match_group(toks, k)
                else:
                    k += 1
            continue
        if tx == "=":
            # `= 0;` / `= default;` / `= delete;` end a declaration.
            if k + 2 < n and toks[k + 1].text in ("0", "default", "delete") \
                    and toks[k + 2].text == ";":
                return (quals, name, name_tok.line, role, role_line, None,
                        k + 3)
            return None
        if tx == ";":
            return (quals, name, name_tok.line, role, role_line, None, k + 1)
        if tx == "{":
            return (quals, name, name_tok.line, role, role_line, k, k)
        if tx == ":":
            # Constructor initializer list: initializer groups `x_(...)` or
            # `x_{...}` until a '{' that follows a group close — the body.
            k += 1
            prev = ":"
            while k < n:
                tx2 = toks[k].text
                if tx2 == "{":
                    if prev in (")", "}"):
                        return (quals, name, name_tok.line, role, role_line,
                                k, k)
                    k = _match_group(toks, k)
                    prev = "}"
                    continue
                if tx2 == "(":
                    k = _match_group(toks, k)
                    prev = ")"
                    continue
                if tx2 == "<" and prev == "ident":
                    k = _skip_template_args(toks, k)
                    prev = ">"
                    continue
                if toks[k].kind == IDENT:
                    prev = "ident"
                else:
                    prev = tx2
                k += 1
            return None
        return None  # anything else: not a function declarator
    return None


def collect_fn_facts(path: str, toks: list[Token], ctx: "TreeContext") -> None:
    """Pass-1 collection for the thread-role rule: function definitions,
    declarations, role markers, and intra-body call sites."""
    n = len(toks)
    scope: list[tuple[str, str, int]] = []  # (kind, name, depth-inside)
    fn_stack: list[tuple[FnInfo, int]] = []
    depth = 0
    i = 0
    while i < n:
        t = toks[i]
        text = t.text

        if text == "{":
            depth += 1
            i += 1
            continue
        if text == "}":
            depth -= 1
            while scope and scope[-1][2] > depth:
                scope.pop()
            while fn_stack and fn_stack[-1][1] > depth:
                fn_stack.pop()
            i += 1
            continue

        in_fn = bool(fn_stack)

        if not in_fn and t.kind == IDENT and text == "namespace":
            j = i + 1
            names: list[str] = []
            while j < n and toks[j].kind == IDENT:
                names.append(toks[j].text)
                if j + 1 < n and toks[j + 1].text == "::":
                    j += 2
                else:
                    j += 1
                    break
            if j < n and toks[j].text == "{":
                for nm in names:  # anonymous: nothing pushed
                    scope.append(("ns", nm, depth + 1))
                depth += 1
                i = j + 1
            else:
                i = j  # namespace alias or malformed; skip the keyword
            continue

        if not in_fn and t.kind == IDENT and text in ("class", "struct") \
                and not (i > 0 and toks[i - 1].text == "enum"):
            j = i + 1
            name = None
            while j < n and toks[j].text not in ("{", ":", ";", "<"):
                tj = toks[j]
                if tj.kind == IDENT:
                    if j + 1 < n and toks[j + 1].text == "(":
                        j = _match_group(toks, j + 1)  # attribute macro
                        continue
                    if tj.text not in ("final", "alignas"):
                        name = tj.text
                j += 1
            # Base clause / specialization args: forward to the body brace.
            while j < n and toks[j].text not in ("{", ";"):
                if toks[j].text == "(":
                    j = _match_group(toks, j)
                    continue
                j += 1
            if j < n and toks[j].text == "{" and name is not None:
                scope.append(("class", name, depth + 1))
                depth += 1
                i = j + 1
                continue
            i = j
            continue

        if not in_fn and text == "(" and i > 0 and toks[i - 1].kind == IDENT:
            parsed = _parse_fn_declarator(toks, i)
            if parsed is not None:
                quals, name, name_line, role, role_line, body_open, resume \
                    = parsed
                chain = tuple(nm for _, nm, _ in scope) \
                    + tuple(quals) + (name,)
                is_method = any(k == "class" for k, _, _ in scope) \
                    or bool(quals)
                fn = ctx.fns.get(chain)
                if fn is None:
                    fn = FnInfo(chain, path, name_line, is_method)
                    ctx.fns[chain] = fn
                    ctx.fns_by_name.setdefault(name, []).append(fn)
                fn.is_method = fn.is_method or is_method
                if role is not None:
                    if fn.role is not None and fn.role != role:
                        ctx.role_conflicts.append(Finding(
                            path, role_line, "thread-role",
                            f"conflicting thread-role annotations for "
                            f"'{fn.display()}': {role} here vs {fn.role} "
                            f"at {fn.role_path}:{fn.role_line}"))
                    else:
                        fn.role = role
                        fn.role_path = path
                        fn.role_line = role_line
                if body_open is not None:
                    if not fn.has_body:
                        # The definition anchors the function (declarations
                        # keep whatever file registered first).
                        fn.has_body = True
                        fn.path = path
                        fn.line = name_line
                    fn_stack.append((fn, depth + 1))
                    depth += 1
                    i = body_open + 1
                    continue
                i = resume
                continue

        if in_fn and t.kind == IDENT and _is_call(toks, i) \
                and text not in _CTRL_KEYWORDS and not _is_macro_like(text) \
                and not _is_std_qualified(toks, i):
            j = i
            quals2: list[str] = []
            while j >= 2 and toks[j - 1].text == "::" \
                    and toks[j - 2].kind == IDENT:
                quals2.insert(0, toks[j - 2].text)
                j -= 2
            if not (quals2 and quals2[0] == "std"):
                member = j > 0 and toks[j - 1].text in (".", "->")
                fn_stack[-1][0].calls.append(
                    CallSite(text, tuple(quals2), member, t.line))
        i += 1


def _resolve_candidates(ctx: "TreeContext", call: CallSite) -> list[FnInfo]:
    out = []
    for fn in ctx.fns_by_name.get(call.name, []):
        fn_quals = fn.key[:-1]
        if call.quals:
            cq = tuple(call.quals)
            if len(fn_quals) < len(cq) or fn_quals[-len(cq):] != cq:
                continue
        elif call.member and not fn.is_method:
            continue
        out.append(fn)
    return sorted(out, key=lambda f: f.key)


def _thread_role_table(ctx: "TreeContext") -> dict[str, list[Finding]]:
    """Runs the reachability analysis once per tree; findings are grouped
    by the file they anchor in (the worker-safe root's first call site, so
    per-file suppressions apply at the place the chain starts)."""
    if ctx.thread_role_table is not None:
        return ctx.thread_role_table
    table: dict[str, list[Finding]] = {}
    for f in ctx.role_conflicts:
        table.setdefault(f.path, []).append(f)

    roots = sorted((fn for fn in ctx.fns.values()
                    if fn.role == "worker-safe" and fn.has_body),
                   key=lambda fn: fn.key)
    for root in roots:
        reported: set[tuple[tuple[str, ...], ...]] = set()

        # chain: [(caller FnInfo, CallSite, callee FnInfo), ...]
        def walk(fn: FnInfo, chain, visited) -> None:
            for call in sorted(fn.calls, key=lambda c: (c.line, c.name)):
                for cand in _resolve_candidates(ctx, call):
                    if cand.key == fn.key or cand.key in visited:
                        continue
                    hop = (fn, call, cand)
                    if cand.role == "commit-only":
                        dedup = (root.key, cand.key)
                        if dedup in reported:
                            continue
                        reported.add(dedup)
                        first_call = (chain[0][1] if chain else call)
                        hops = " -> ".join(
                            f"{c.display()} (called at {f0.path}:{cs.line})"
                            for f0, cs, c in chain + [hop])
                        table.setdefault(root.path, []).append(Finding(
                            root.path, first_call.line, "thread-role",
                            f"worker-safe '{root.display()}' reaches "
                            f"commit-only '{cand.display()}' (annotated at "
                            f"{cand.role_path}:{cand.role_line}): "
                            f"{root.display()} -> {hops}"))
                        continue
                    if cand.role in ("worker-safe", "role-agnostic"):
                        # Barriers: worker-safe callees are themselves
                        # checked roots; role-agnostic is trusted by
                        # contract.
                        continue
                    if cand.has_body:
                        walk(cand, chain + [hop], visited | {cand.key})

        walk(root, [], {root.key})

    for findings in table.values():
        findings.sort(key=lambda f: (f.line, f.message))
    ctx.thread_role_table = table
    return table


class ThreadRoleRule(Rule):
    def check(self, path, toks, ctx):
        return list(_thread_role_table(ctx).get(path, []))


class WallClockRule(Rule):
    _BANNED_IDENTS = ("steady_clock", "system_clock", "high_resolution_clock")
    _BANNED_CALLS = ("time", "clock", "gettimeofday", "clock_gettime",
                     "localtime", "gmtime", "mktime")

    def check(self, path, toks, ctx):
        out = []
        for i, t in enumerate(toks):
            if t.kind != IDENT:
                continue
            if t.text in self._BANNED_IDENTS:
                out.append(Finding(
                    path, t.line, self.name,
                    f"'{t.text}' reads the host clock; simulation code must "
                    "use sim::Simulator time"))
            elif (t.text in self._BANNED_CALLS and _is_call(toks, i)
                  and not _is_member_access(toks, i)):
                # `std::time(...)` / `::time(...)` / `time(...)`; member
                # calls like `queue.next_time()` are fine.
                qualifier_ok = not (i >= 1 and toks[i - 1].text == "::") or \
                    (i >= 2 and toks[i - 2].text == "std") or \
                    (i >= 1 and toks[i - 1].text == "::"
                     and (i < 2 or toks[i - 2].kind != IDENT))
                if qualifier_ok:
                    out.append(Finding(
                        path, t.line, self.name,
                        f"'{t.text}()' reads the host clock; simulation code "
                        "must use sim::Simulator time"))
        return out


class GlobalRngRule(Rule):
    _BANNED = ("random_device",)
    _BANNED_CALLS = ("rand", "srand", "rand_r", "drand48", "srandom")

    def check(self, path, toks, ctx):
        out = []
        for i, t in enumerate(toks):
            if t.kind != IDENT:
                continue
            if t.text in self._BANNED:
                out.append(Finding(
                    path, t.line, self.name,
                    f"'{t.text}' is nondeterministic; derive a util::Rng "
                    "substream from the scenario seed instead"))
            elif (t.text in self._BANNED_CALLS and _is_call(toks, i)
                  and not _is_member_access(toks, i)):
                out.append(Finding(
                    path, t.line, self.name,
                    f"'{t.text}()' uses hidden global RNG state; use "
                    "util::Rng substreams"))
        return out


class UnorderedIterRule(Rule):
    def check(self, path, toks, ctx):
        out = []
        n = len(toks)
        for i, t in enumerate(toks):
            # Range-for over a known unordered variable:
            #   for ( <decl> : NAME )   /  for ( <decl> : this->NAME )
            if t.kind == IDENT and t.text == "for" and _is_call(toks, i):
                colon = self._range_for_colon(toks, i + 1)
                if colon is None:
                    continue
                name = self._range_expr_name(toks, colon)
                if name is not None and name in ctx.unordered_vars:
                    out.append(Finding(
                        path, toks[colon].line, self.name,
                        f"range-for over unordered container '{name}' "
                        "iterates in standard-library hash order; use a "
                        "sorted flat container or sort before iterating"))
            # Explicit iterator loop: NAME.begin() / NAME.cbegin()
            if (t.kind == IDENT and t.text in ("begin", "cbegin")
                    and _is_call(toks, i) and _is_member_access(toks, i)
                    and i >= 2 and toks[i - 2].kind == IDENT
                    and toks[i - 2].text in ctx.unordered_vars):
                out.append(Finding(
                    path, t.line, self.name,
                    f"iterator over unordered container '{toks[i - 2].text}' "
                    "walks standard-library hash order; use a sorted flat "
                    "container or collect-and-sort first"))
        return out

    @staticmethod
    def _range_for_colon(toks, open_paren):
        """Index of the ':' at depth 1 of a for-header, or None (classic
        three-clause for). `::` is a single token, so no confusion."""
        depth = 0
        i = open_paren
        while i < len(toks):
            t = toks[i].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    return None
            elif t == ";" and depth == 1:
                return None
            elif t == ":" and depth == 1:
                return i
            i += 1
        return None

    @staticmethod
    def _range_expr_name(toks, colon):
        """The identifier being ranged over, for plain `NAME` or
        `this->NAME` / `obj.NAME` chains; None for call expressions (we
        cannot resolve return types)."""
        # Find matching ')' of the for-header.
        depth = 1
        i = colon + 1
        last_ident = None
        prev = None
        while i < len(toks):
            t = toks[i]
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    break
            if depth >= 1:
                if t.kind == IDENT:
                    last_ident = t.text
                    prev = "ident"
                elif t.text in (".", "->"):
                    prev = "access"
                else:
                    prev = "other"
            i += 1
        # `m`, `this->m` end on an identifier; `f()` ends on ')'.
        return last_ident if prev == "ident" else None


class HotPathRule(Rule):
    def check(self, path, toks, ctx):
        out = []
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != IDENT:
                continue
            if t.text == "function" and _is_std_qualified(toks, i):
                out.append(Finding(
                    path, t.line, self.name,
                    "std::function in a zero-alloc-loop file: it heap-"
                    "allocates large captures; use sim::InplaceEvent or a "
                    "template parameter"))
            elif t.text == "make_shared":
                out.append(Finding(
                    path, t.line, self.name,
                    "make_shared in a zero-alloc-loop file allocates a "
                    "control block per call; pool or pre-size instead"))
            elif (t.text == "new" and i + 1 < n and toks[i + 1].kind == IDENT
                  and (i == 0 or toks[i - 1].text != "::")):
                # `new T(...)` allocates; placement `::new (buf) T` and
                # `new (buf) T` (next token '(') do not.
                out.append(Finding(
                    path, t.line, self.name,
                    f"naked 'new {toks[i + 1].text}' in a zero-alloc-loop "
                    "file; pool or pre-size instead"))
        return out


class IoDisciplineRule(Rule):
    _BANNED_STREAMS = ("cout", "cerr", "clog")
    _BANNED_CALLS = ("printf", "fprintf", "puts", "fputs", "putchar")

    def check(self, path, toks, ctx):
        out = []
        for i, t in enumerate(toks):
            if t.kind != IDENT:
                continue
            if t.text in self._BANNED_STREAMS and _is_std_qualified(toks, i):
                out.append(Finding(
                    path, t.line, self.name,
                    f"std::{t.text} in simulation code; report through "
                    "util::Logger or a stream passed in by the caller"))
            elif (t.text in self._BANNED_CALLS and _is_call(toks, i)
                  and not _is_member_access(toks, i)):
                out.append(Finding(
                    path, t.line, self.name,
                    f"'{t.text}()' in simulation code; report through "
                    "util::Logger or a stream passed in by the caller"))
        return out


# Files participating in the zero-allocation steady-state loop (see
# tests/test_zero_alloc.cpp). Extend when a new subsystem joins the loop.
HOT_PATH_PREFIXES = (
    "src/sim/",
    "src/net/",
    "src/cluster/agent",
    "src/geom/grid_index",
)

RULES: list[Rule] = [
    WallClockRule(
        name="wall-clock",
        description="no host-clock reads in simulation code",
        only_under=("src/",),
        # Farm plumbing measures host wall time by design: run timing
        # (runner), progress reporting, subprocess deadlines and respawn
        # backoff (subprocess/worker). Simulated time never flows there.
        allow_under=("src/util/progress", "src/util/subprocess",
                     "src/scenario/runner", "src/scenario/worker"),
    ),
    GlobalRngRule(
        name="global-rng",
        description="all randomness via util::Rng substreams",
        only_under=("src/",),
        allow_under=("src/util/rng",),
    ),
    UnorderedIterRule(
        name="unordered-iter",
        description="no iteration over unordered containers",
        only_under=("src/",),
    ),
    HotPathRule(
        name="hot-path",
        description="no std::function / new / make_shared in zero-alloc files",
        only_under=HOT_PATH_PREFIXES,
    ),
    IoDisciplineRule(
        name="io-discipline",
        description="no direct stdout/stderr writes outside util/",
        only_under=("src/",),
        allow_under=("src/util/",),
    ),
    ThreadRoleRule(
        name="thread-role",
        description="no call path from worker-safe roots to commit-only "
                    "effects (cross-TU)",
        only_under=("src/",),
    ),
]

RULE_NAMES = {r.name for r in RULES} | {"suppression"}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

_EXTS = (".h", ".hpp", ".hh", ".cpp", ".cc", ".cxx")


def gather_files(root: str, paths: list[str]) -> list[str]:
    """Expands CLI paths (relative to root) to a sorted list of
    repo-relative source files."""
    files: set[str] = set()
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.add(os.path.relpath(full, root))
        elif os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames[:] = sorted(d for d in dirnames
                                     if not d.startswith("."))
                for fn in filenames:
                    if fn.endswith(_EXTS):
                        files.add(os.path.relpath(
                            os.path.join(dirpath, fn), root))
        else:
            print(f"manet-lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(f.replace(os.sep, "/") for f in files)


def lint_tree(root: str, rel_files: list[str],
              rule_filter: set[str] | None = None) -> tuple[
        list[Finding], list[Suppression]]:
    """Runs all rules over the file set; returns surviving findings and the
    suppressions that were honored."""
    parsed: dict[str, list[Token]] = {}
    for rel in rel_files:
        with open(os.path.join(root, rel), "r", encoding="utf-8",
                  errors="replace") as fh:
            parsed[rel] = tokenize(fh.read())

    # Pass 1: cross-file declaration facts.
    ctx = TreeContext()
    for toks in parsed.values():
        collect_unordered_decls(code_tokens(toks), ctx)
    for toks in parsed.values():
        collect_alias_decls(code_tokens(toks), ctx)
    for rel, toks in parsed.items():
        collect_fn_facts(rel, code_tokens(toks), ctx)

    # Pass 2: rules + suppressions per file.
    findings: list[Finding] = []
    honored: list[Suppression] = []
    for rel, toks in parsed.items():
        sups, bad = scan_suppressions(rel, toks)
        for s in sups:
            if s.rule not in RULE_NAMES:
                bad.append(Finding(
                    s.path, s.line, "suppression",
                    f"suppression names unknown rule '{s.rule}'"))
        file_findings: list[Finding] = []
        code = code_tokens(toks)
        for rule in RULES:
            if rule_filter is not None and rule.name not in rule_filter:
                continue
            if rule.applies(rel):
                file_findings.extend(rule.check(rel, code, ctx))
        survivors = apply_suppressions(file_findings, sups)
        silenced_count = len(file_findings) - len(survivors)
        # Suppressions that silenced something are "honored"; unused ones
        # are fine (they may guard a line that is clean on this platform).
        if silenced_count > 0 or sups:
            honored.extend(sups)
        findings.extend(survivors)
        # Suppression-syntax findings respect --rule filtering too.
        if rule_filter is None or "suppression" in rule_filter:
            findings.extend(bad)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, honored


def count_suppressions(root: str, rel_files: list[str]) -> list[Suppression]:
    out: list[Suppression] = []
    for rel in rel_files:
        with open(os.path.join(root, rel), "r", encoding="utf-8",
                  errors="replace") as fh:
            toks = tokenize(fh.read())
        sups, _ = scan_suppressions(rel, toks)
        out.extend(sups)
    return out


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="manet-lint",
        description="determinism-contract linter for the MANET simulator")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/dirs relative to --root (default: src)")
    ap.add_argument("--root", default=".",
                    help="repository root the rule path prefixes are "
                         "resolved against (default: cwd)")
    ap.add_argument("--werror", action="store_true",
                    help="exit 2 if any finding survives suppression")
    ap.add_argument("--rule", action="append", dest="rules", metavar="NAME",
                    help="run only this rule (repeatable)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    ap.add_argument("--count-suppressions", action="store_true",
                    help="print every suppression and the total, then exit 0")
    ap.add_argument("--max-suppressions", type=int, default=None,
                    metavar="N",
                    help="fail (exit 2) if more than N suppressions exist "
                         "in the scanned files")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            scope = ", ".join(p or "<everywhere>" for p in r.only_under)
            print(f"{r.name:16s} {r.description}")
            print(f"{'':16s}   scope: {scope}")
            if r.allow_under:
                print(f"{'':16s}   allowed: {', '.join(r.allow_under)}")
        return 0

    if args.rules:
        unknown = set(args.rules) - RULE_NAMES
        if unknown:
            print(f"manet-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    root = os.path.abspath(args.root)
    paths = args.paths if args.paths else ["src"]
    rel_files = gather_files(root, paths)
    if not rel_files:
        print("manet-lint: no source files found", file=sys.stderr)
        return 2

    if args.count_suppressions:
        sups = count_suppressions(root, rel_files)
        for s in sups:
            print(f"{s.path}:{s.line}: allow({s.rule}): {s.justification}")
        print(f"total: {len(sups)}")
        if args.max_suppressions is not None \
                and len(sups) > args.max_suppressions:
            print(f"manet-lint: suppression budget exceeded: {len(sups)} > "
                  f"{args.max_suppressions}", file=sys.stderr)
            return 2
        return 0

    rule_filter = set(args.rules) if args.rules else None
    findings, _ = lint_tree(root, rel_files, rule_filter)
    for f in findings:
        print(f.render())

    if args.max_suppressions is not None:
        sups = count_suppressions(root, rel_files)
        if len(sups) > args.max_suppressions:
            print(f"manet-lint: suppression budget exceeded: {len(sups)} > "
                  f"{args.max_suppressions}", file=sys.stderr)
            return 2

    if findings:
        print(f"manet-lint: {len(findings)} finding(s) in "
              f"{len(rel_files)} file(s)", file=sys.stderr)
        return 2 if args.werror else 0
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
