#!/usr/bin/env python3
"""Non-destructive clang-format drift check.

Reports files whose formatting differs from `.clang-format` WITHOUT ever
rewriting them — history stays untouched; fixing drift is a human decision.

By default only files changed relative to a base ref are checked (so legacy
formatting never blocks an unrelated PR); `--all` sweeps every tracked C++
source.

    format_check.py                    # changed files vs origin/main or main
    format_check.py --base HEAD~1      # changed files vs an explicit ref
    format_check.py --all              # the whole tree

Exit codes: 0 clean (or nothing to check), 1 drift found, 2 environment
error. When clang-format is not installed the check is skipped with exit 0
and a notice — local trees without LLVM must not fail the build; CI installs
clang-format explicitly.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys

_EXTS = (".h", ".hpp", ".hh", ".cpp", ".cc", ".cxx")


def run(cmd: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, capture_output=True, text=True, check=False)


def resolve_base(explicit: str | None) -> str | None:
    candidates = [explicit] if explicit else ["origin/main", "main"]
    for ref in candidates:
        if ref and run(["git", "rev-parse", "--verify", "-q",
                        ref]).returncode == 0:
            return ref
    return None


def changed_files(base: str) -> list[str]:
    merge_base = run(["git", "merge-base", base, "HEAD"]).stdout.strip()
    anchor = merge_base or base
    diff = run(["git", "diff", "--name-only", "--diff-filter=ACMR", anchor])
    files = diff.stdout.split()
    # Uncommitted work counts too.
    files += run(["git", "diff", "--name-only", "--diff-filter=ACMR"]
                 ).stdout.split()
    files += run(["git", "ls-files", "--others", "--exclude-standard"]
                 ).stdout.split()
    return sorted({f for f in files if f.endswith(_EXTS)})


def tracked_files() -> list[str]:
    out = run(["git", "ls-files"]).stdout.split()
    return sorted(f for f in out if f.endswith(_EXTS))


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--all", action="store_true",
                    help="check every tracked C++ file, not just changed ones")
    ap.add_argument("--base", default=None,
                    help="git ref to diff against (default: origin/main, "
                         "then main)")
    ap.add_argument("--clang-format", default="clang-format",
                    help="clang-format binary to use")
    args = ap.parse_args(argv)

    if shutil.which(args.clang_format) is None:
        print(f"format-check: '{args.clang_format}' not installed; skipping "
              "(CI installs it; locally: apt-get install clang-format)")
        return 0

    if args.all:
        files = tracked_files()
    else:
        base = resolve_base(args.base)
        if base is None:
            print("format-check: no base ref found; falling back to --all")
            files = tracked_files()
        else:
            files = changed_files(base)
    if not files:
        print("format-check: no C++ files to check")
        return 0

    drifted: list[str] = []
    for f in files:
        r = run([args.clang_format, "--dry-run", "--Werror", "--style=file",
                 f])
        if r.returncode != 0:
            drifted.append(f)
            # First few diagnostics are enough to locate the drift.
            for line in r.stderr.splitlines()[:4]:
                print(line, file=sys.stderr)
    if drifted:
        print(f"format-check: {len(drifted)} file(s) drift from "
              ".clang-format (not rewritten — run clang-format -i yourself "
              "if you agree):")
        for f in drifted:
            print(f"  {f}")
        return 1
    print(f"format-check: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
