// Renders cluster-topology frames of a running scenario as SVG — a
// Figure-1-style picture of the live system: clusterheads as squares,
// members colored by their cluster, gateways ringed, member->head edges,
// and dashed coverage disks around each head.
//
//   ./visualize [--algorithm mobic] [--frames 4] [--time 300]
//               [--range 150] [--out-prefix clusters]
//
// Produces <out-prefix>_t<seconds>.svg per frame.
#include <iostream>

#include "scenario/experiment.h"
#include "scenario/timeline.h"
#include "util/flags.h"
#include "util/svg.h"
#include "util/table.h"

namespace {

using namespace manet;

void render_frame(const std::vector<scenario::TimelineRecorder::SnapshotRow>&
                      rows,
                  const geom::Rect& field, double tx_range,
                  const std::string& path) {
  constexpr double kMargin = 30.0;
  constexpr double kScale = 0.9;  // px per meter, clamped below
  const double scale =
      std::min(kScale, std::min(800.0 / field.width, 800.0 / field.height));
  const double w = field.width * scale + 2 * kMargin;
  const double h = field.height * scale + 2 * kMargin;
  util::SvgDocument svg(w, h);
  svg.add_rect(0, 0, w, h, "white");
  svg.add_rect(kMargin, kMargin, field.width * scale, field.height * scale,
               "none", "#888", 1.0);

  const auto px = [&](geom::Vec2 p) {
    // SVG y grows downward; flip so the field reads like a map.
    return geom::Vec2{kMargin + p.x * scale,
                      kMargin + (field.height - p.y) * scale};
  };

  // Color per clusterhead id.
  const auto color_of = [&](net::NodeId head) {
    return head == net::kInvalidNode ? std::string("#cccccc")
                                     : util::SvgDocument::palette(head);
  };

  // Pass 1: coverage disks + member->head edges (under the nodes).
  for (const auto& r : rows) {
    if (r.role == cluster::Role::kHead) {
      const auto c = px(r.pos);
      svg.add_circle_outline(c.x, c.y, tx_range * scale, color_of(r.node),
                             1.0);
    }
  }
  for (const auto& r : rows) {
    if (r.role == cluster::Role::kMember &&
        r.head != net::kInvalidNode) {
      for (const auto& head_row : rows) {
        if (head_row.node == r.head) {
          const auto a = px(r.pos);
          const auto b = px(head_row.pos);
          svg.add_line(a.x, a.y, b.x, b.y, color_of(r.head), 1.0, 0.5);
          break;
        }
      }
    }
  }
  // Pass 2: nodes.
  for (const auto& r : rows) {
    const auto c = px(r.pos);
    const std::string color = color_of(r.head);
    switch (r.role) {
      case cluster::Role::kHead: {
        const double s = 7.0;
        svg.add_rect(c.x - s, c.y - s, 2 * s, 2 * s, color, "black", 1.5);
        break;
      }
      case cluster::Role::kMember:
        svg.add_circle(c.x, c.y, 4.5, color,
                       r.gateway ? "black" : "none", r.gateway ? 2.0 : 0.0);
        break;
      case cluster::Role::kUndecided:
        svg.add_circle(c.x, c.y, 4.5, "#cccccc", "#666", 1.0);
        break;
    }
    svg.add_text(c.x + 7, c.y - 7, std::to_string(r.node), 9, "#333");
  }
  svg.add_text(kMargin, h - 8,
               "squares = clusterheads, ringed dots = gateways, t = " +
                   util::Table::fmt(rows.front().t, 0) + " s",
               11, "#333");
  svg.save(path);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string algorithm = flags.get_string("algorithm", "mobic");
  const int frames = flags.get_int("frames", 4);
  const double time = flags.get_double("time", 300.0);
  const double range = flags.get_double("range", 150.0);
  const std::string prefix = flags.get_string("out-prefix", "clusters");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.finish();

  scenario::Scenario s;
  s.n_nodes = 50;
  s.fleet.field = geom::Rect(670.0, 670.0);
  s.fleet.max_speed = 20.0;
  s.tx_range = range;
  s.sim_time = time;
  s.seed = seed;

  const double frame_period = time / frames;
  scenario::TimelineRecorder recorder;
  run_scenario(
      s, scenario::factory_by_name(algorithm),
      [&](scenario::LiveContext& ctx) {
        recorder.schedule_snapshots(ctx, frame_period, time);
      },
      &recorder);

  // Group snapshot rows by frame time and render each (skip t = 0, which is
  // all-undecided).
  std::map<double, std::vector<scenario::TimelineRecorder::SnapshotRow>>
      by_time;
  for (const auto& row : recorder.snapshots()) {
    by_time[row.t].push_back(row);
  }
  int rendered = 0;
  for (const auto& [t, rows] : by_time) {
    if (t == 0.0) {
      continue;
    }
    const std::string path =
        prefix + "_t" + std::to_string(static_cast<int>(t)) + ".svg";
    render_frame(rows, s.fleet.field, s.tx_range, path);
    std::cout << "wrote " << path << " (" << rows.size() << " nodes)\n";
    ++rendered;
  }
  std::cout << rendered << " frames rendered for algorithm '" << algorithm
            << "'.\n";
  return rendered > 0 ? 0 : 1;
}
