// §5 scenario: attendees in a conference hall (RPGM group mobility [9]).
// Groups of people drift between posters/booths together; within a group
// relative mobility is tiny even while the group itself moves. A good
// clusterhead is anyone deep inside a group — which is what the aggregate
// mobility metric selects. Also demonstrates trace record/replay: both
// algorithms are driven by the *identical* recorded motion.
//
//   ./conference [--groups G] [--group-size S] [--time T] [--seed K]
//                [--jobs N]
#include <fstream>
#include <iostream>

#include "mobility/trace.h"
#include "scenario/runner.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace manet;

  util::Flags flags(argc, argv);
  const int groups = flags.get_int("groups", 5);
  const int group_size = flags.get_int("group-size", 10);
  const double time = flags.get_double("time", 600.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int jobs = flags.get_int("jobs", 0);
  flags.finish();

  const auto n = static_cast<std::size_t>(groups * group_size);

  scenario::Scenario s;
  s.n_nodes = n;
  s.tx_range = 100.0;  // indoor-ish range
  s.sim_time = time;
  s.seed = seed;
  s.fleet.kind = mobility::ModelKind::kRpgm;
  s.fleet.field = geom::Rect(300.0, 300.0);  // a large hall
  s.fleet.max_speed = 1.5;                   // walking pace groups
  s.fleet.min_speed = 0.2;
  s.fleet.pause_time = 20.0;                 // groups linger at booths
  s.fleet.rpgm_group_size = static_cast<std::size_t>(group_size);
  s.fleet.rpgm_offset_radius = 15.0;
  s.fleet.rpgm_offset_speed = 0.5;

  std::cout << "Conference hall: " << groups << " groups x " << group_size
            << " attendees, 300x300 m hall, walking pace, Tx = 100 m, "
            << time << " s.\n\n";

  // Both algorithms run concurrently (same scenario, same seed); results
  // come back in algorithm order, so the table is jobs-independent.
  scenario::RunnerOptions opts;
  opts.jobs = jobs;
  const scenario::Runner runner(opts);
  const auto algorithms = scenario::paper_algorithms();
  const auto matrix = runner.run_matrix(s, algorithms, 1);

  util::Table table({"algorithm", "CH changes", "avg clusters",
                     "avg cluster size", "mean CH reign (s)"});
  double cs_lid = 0.0, cs_mobic = 0.0;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const auto& r = matrix[a][0];
    (algorithms[a].name == "mobic" ? cs_mobic : cs_lid) =
        static_cast<double>(r.ch_changes);
    table.add(algorithms[a].name, r.ch_changes,
              util::Table::fmt(r.avg_clusters, 1),
              util::Table::fmt(r.avg_cluster_size, 1),
              util::Table::fmt(r.mean_head_lifetime, 1));
  }
  table.print(std::cout);

  // Bonus: persist one group's motion as a trace CSV (the ns-2 scenario-
  // file equivalent) so the run can be inspected or replayed elsewhere.
  mobility::FleetParams fp = s.fleet;
  fp.duration = 60.0;
  auto fleet = mobility::make_fleet(fp, static_cast<std::size_t>(group_size),
                                    util::Rng(seed).substream("mobility"));
  std::vector<mobility::PiecewiseLinearTrack> tracks;
  for (auto& m : fleet) {
    tracks.push_back(mobility::record_track(*m, 60.0, 1.0));
  }
  const std::string trace_path = "conference_group0_trace.csv";
  {
    std::ofstream out(trace_path);
    mobility::write_traces_csv(out, tracks);
  }
  std::cout << "\nWrote 60 s of group-0 motion to " << trace_path << " ("
            << tracks.size() << " tracks; replayable via "
               "mobility::read_traces_csv + TraceModel).\n";
  if (cs_lid > 0.0) {
    std::cout << "MOBIC churn reduction: "
              << util::Table::fmt((cs_lid - cs_mobic) / cs_lid * 100.0, 1)
              << "%\n";
  }
  return 0;
}
