// §5 scenario: cars on a highway. Four lanes (two per direction), vehicles
// cruise with small speed jitter; same-direction convoys have low relative
// mobility while opposite-direction traffic sweeps through at ~50 m/s
// closing speed. MOBIC should keep clusterheads inside convoys; Lowest-ID
// anoints whoever has the small id — even a car about to exit.
//
//   ./highway [--vehicles N] [--time S] [--range M] [--seed K] [--jobs N]
#include <iostream>

#include "scenario/runner.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace manet;

  util::Flags flags(argc, argv);
  const int vehicles = flags.get_int("vehicles", 60);
  const double time = flags.get_double("time", 600.0);
  const double range = flags.get_double("range", 150.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int jobs = flags.get_int("jobs", 0);
  flags.finish();

  scenario::Scenario s;
  s.n_nodes = static_cast<std::size_t>(vehicles);
  s.tx_range = range;
  s.sim_time = time;
  s.seed = seed;
  s.fleet.kind = mobility::ModelKind::kHighway;
  s.fleet.highway.length = 3000.0;
  s.fleet.highway.lanes_per_direction = 2;
  s.fleet.highway.mean_speed = 25.0;  // ~90 km/h
  s.fleet.highway.speed_stddev = 3.0;

  std::cout << "Highway scenario: " << vehicles << " vehicles, 3 km, "
            << "4 lanes, ~25 m/s cruise, Tx = " << range << " m, " << time
            << " s.\n\n";

  scenario::RunnerOptions opts;
  opts.jobs = jobs;
  const scenario::Runner runner(opts);
  const auto algorithms = scenario::paper_algorithms();
  const auto matrix = runner.run_matrix(s, algorithms, 1);

  util::Table table({"algorithm", "CH changes", "avg clusters",
                     "reaffiliations", "mean CH reign (s)"});
  double cs_lid = 0.0, cs_mobic = 0.0;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const auto& r = matrix[a][0];
    (algorithms[a].name == "mobic" ? cs_mobic : cs_lid) =
        static_cast<double>(r.ch_changes);
    table.add(algorithms[a].name, r.ch_changes,
              util::Table::fmt(r.avg_clusters, 1), r.reaffiliations,
              util::Table::fmt(r.mean_head_lifetime, 1));
  }
  table.print(std::cout);

  if (cs_lid > 0.0) {
    std::cout << "\nMOBIC reduces clusterhead churn by "
              << util::Table::fmt((cs_lid - cs_mobic) / cs_lid * 100.0, 1)
              << "% in convoy traffic (§5 predicted this structured-"
                 "mobility case to suit the metric).\n";
  }
  return 0;
}
