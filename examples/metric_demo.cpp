// Figure-2 walkthrough: one receiver, three neighbors — one approaching,
// one receding, one orbiting at constant distance — showing the relative
// mobility metric (eq. 1) per neighbor and the aggregate metric M (eq. 2)
// evolving beacon by beacon, exactly as a node computes them from received
// powers (no positions, no GPS).
//
//   ./metric_demo [--duration S]
#include <cmath>
#include <iostream>

#include "cluster/presets.h"
#include "mobility/trace.h"
#include "net/network.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace manet;

mobility::PiecewiseLinearTrack line(geom::Vec2 from, geom::Vec2 to,
                                    double duration) {
  mobility::PiecewiseLinearTrack t;
  t.append(0.0, from);
  t.append(duration, to);
  return t;
}

// Circle around `center` at `radius`, as a polyline.
mobility::PiecewiseLinearTrack orbit(geom::Vec2 center, double radius,
                                     double duration) {
  mobility::PiecewiseLinearTrack t;
  const int steps = 64;
  for (int i = 0; i <= steps; ++i) {
    const double phi = 2.0 * M_PI * i / steps;
    t.append(duration * i / steps,
             center + geom::Vec2{radius * std::cos(phi),
                                 radius * std::sin(phi)});
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double duration = flags.get_double("duration", 30.0);
  flags.finish();

  sim::Simulator sim;
  util::Rng root(7);
  net::NetworkParams params;
  params.per_beacon_jitter = 0.0;  // clean cadence for the walkthrough
  net::Network network(sim, radio::make_paper_medium(250.0),
                       geom::Rect(1000.0, 1000.0), params,
                       root.substream("net"));

  // Node 0: the observer, static at the center.
  // Node 1: approaches from 240 m to 40 m.  Node 2: recedes 40 -> 240 m.
  // Node 3: orbits at a constant 120 m (mobile but constant-power!).
  const geom::Vec2 c{500.0, 500.0};
  std::vector<mobility::PiecewiseLinearTrack> tracks;
  tracks.push_back(line(c, c, duration));
  tracks.push_back(line(c + geom::Vec2{240.0, 0.0},
                        c + geom::Vec2{40.0, 0.0}, duration));
  tracks.push_back(line(c + geom::Vec2{0.0, 40.0},
                        c + geom::Vec2{0.0, 240.0}, duration));
  tracks.push_back(orbit(c, 120.0, duration));

  std::vector<const cluster::WeightedClusterAgent*> agents;
  for (net::NodeId i = 0; i < 4; ++i) {
    auto node = std::make_unique<net::Node>(
        i, std::make_unique<mobility::TraceModel>(tracks[i]),
        root.substream("node", i));
    auto agent = std::make_unique<cluster::WeightedClusterAgent>(
        cluster::mobic_options());
    agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    network.add_node(std::move(node));
  }
  network.start();

  std::cout << "Eq. (1) per neighbor and eq. (2) aggregate M at node 0.\n"
            << "Neighbor 1 approaches (positive dB), 2 recedes (negative), "
               "3 orbits at constant range (~0 dB).\n\n";

  util::Table table({"t (s)", "M_rel(1) dB", "M_rel(2) dB", "M_rel(3) dB",
                     "M (node 0)", "M (node 3, orbiter)"});
  for (double t = 4.0; t <= duration; t += 4.0) {
    sim.run_until(t);
    const auto& table0 = network.node(0).table();
    const auto cell = [&](net::NodeId id) -> std::string {
      const auto* e = table0.find(id);
      if (e == nullptr || !e->has_successive_pair(3.0)) {
        return "-";
      }
      return util::Table::fmt(
          10.0 * std::log10(e->last_rx_w / e->prev_rx_w), 2);
    };
    table.add(util::Table::fmt(t, 0), cell(1), cell(2), cell(3),
              util::Table::fmt(agents[0]->metric(), 2),
              util::Table::fmt(agents[3]->metric(), 2));
  }
  table.print(std::cout);

  std::cout << "\nNote the orbiter: it moves at "
            << util::Table::fmt(2.0 * M_PI * 120.0 / duration, 1)
            << " m/s yet scores M_rel ~ 0 towards node 0 — the metric "
               "measures *relative* mobility, which is what matters for "
               "cluster stability (§3.1).\n"
            << "Clusterhead after convergence: node "
            << (agents[0]->role() == cluster::Role::kHead ? 0 : 999)
            << " (the quasi-static observer).\n";
  return 0;
}
