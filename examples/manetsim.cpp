// manetsim — the general-purpose command-line front-end: configure any
// scenario (flags or config file), run any clustering algorithm, and export
// reports, configs, and full timelines.
//
// Examples:
//   # the paper's Figure-3 point at Tx = 250 m
//   ./manetsim --algorithm mobic --range 250
//
//   # both paper algorithms side by side, highway mobility
//   ./manetsim --compare --mobility highway --nodes 60 --time 600
//
//   # reproducible experiment spec round-trip
//   ./manetsim --write-config exp.conf
//   ./manetsim --config exp.conf
//
//   # full timeline export for visualization
//   ./manetsim --algorithm mobic --snapshots-csv snap.csv
//              --events-csv events.csv --snapshot-period 5
//
//   # Chrome-trace export (load in Perfetto / chrome://tracing) + metrics
//   ./manetsim --algorithm mobic --trace-out trace.json
//              --trace-level full --metrics-out metrics.jsonl
//
//   # sweep-farm service mode: serve run requests over stdin/stdout (used
//   # by Runner --workers dispatch; see scenario/worker.h)
//   ./manetsim --worker
//
//   # integrity sweep over a result cache: digest-verify every cell, move
//   # corrupt ones to <dir>/quarantine/, optionally recompute from the
//   # .meta provenance sidecars
//   ./manetsim --scrub-cache --cache-dir farm-cache [--scrub-repair]
#include <unistd.h>

#include <fstream>
#include <iostream>

#include "obs/trace.h"

#include "scenario/config.h"
#include "scenario/runner.h"
#include "scenario/timeline.h"
#include "scenario/worker.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace manet;

scenario::Scenario scenario_from_flags(util::Flags& flags) {
  scenario::Scenario s;
  const std::string config = flags.get_string("config", "");
  if (!config.empty()) {
    s = scenario::read_config_file(config);
  }
  // Flags override config-file values.
  if (flags.has("nodes")) {
    s.n_nodes = static_cast<std::size_t>(flags.get_int("nodes", 50));
  }
  if (flags.has("field")) {
    const double side = flags.get_double("field", 670.0);
    s.fleet.field = geom::Rect(side, side);
  }
  if (flags.has("mobility")) {
    s.fleet.kind =
        mobility::parse_model_kind(flags.get_string("mobility", "rwp"));
  }
  if (flags.has("speed")) {
    s.fleet.max_speed = flags.get_double("speed", 20.0);
  }
  if (flags.has("pause")) {
    s.fleet.pause_time = flags.get_double("pause", 0.0);
  }
  if (flags.has("range")) {
    s.tx_range = flags.get_double("range", 250.0);
  }
  if (flags.has("time")) {
    s.sim_time = flags.get_double("time", 900.0);
  }
  if (flags.has("seed")) {
    s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  }
  // Intra-run worker threads for the sharded broadcast pipeline (0 = auto:
  // $MANET_SIM_JOBS, else hardware). Bit-identical for every value — this
  // knob trades wall time only, unlike --jobs which parallelizes across
  // runs.
  if (flags.has("sim-jobs")) {
    s.sim_jobs = flags.get_int("sim-jobs", 1);
  }
  if (flags.has("bi")) {
    s.net.broadcast_interval = flags.get_double("bi", 2.0);
  }
  if (flags.has("tp")) {
    s.net.neighbor_timeout = flags.get_double("tp", 3.0);
  }
  if (flags.has("loss")) {
    s.net.packet_loss = flags.get_double("loss", 0.0);
  }
  if (flags.has("collision-window")) {
    s.net.collision_window = flags.get_double("collision-window", 0.0);
  }
  if (flags.has("propagation")) {
    s.propagation = flags.get_string("propagation", "free_space");
  }
  if (flags.has("sigma")) {
    s.shadowing_sigma_db = flags.get_double("sigma", 4.0);
  }
  // Observability: --trace-out writes a Chrome-trace JSON ("{seed}" and
  // "{tag}" placeholders expand per run — use them under --compare so the
  // algorithms don't clobber one file); --trace-level full adds sampled
  // counter tracks.
  if (flags.has("trace-out")) {
    s.obs.trace_path = flags.get_string("trace-out", "");
  }
  if (flags.has("trace-level")) {
    s.obs.trace =
        obs::parse_trace_level(flags.get_string("trace-level", "spans"));
  }
  return s;
}

void print_report(const std::string& alg, const scenario::RunResult& r) {
  util::Table table({"metric", "value"});
  table.add("clusterhead changes (CS)", r.ch_changes);
  table.add("  gains / losses", std::to_string(r.head_gains) + " / " +
                                    std::to_string(r.head_losses));
  table.add("reaffiliations", r.reaffiliations);
  table.add("mean clusterhead reign (s)",
            util::Table::fmt(r.mean_head_lifetime, 1));
  table.add("avg clusters", util::Table::fmt(r.avg_clusters, 2));
  table.add("avg gateways", util::Table::fmt(r.avg_gateways, 2));
  table.add("avg cluster size", util::Table::fmt(r.avg_cluster_size, 2));
  table.add("avg undecided", util::Table::fmt(r.avg_undecided, 2));
  table.add("mean degree (delivered)", util::Table::fmt(r.mean_degree, 2));
  table.add("beacons sent", r.beacons_sent);
  table.add("hellos delivered", r.hellos_delivered);
  table.add("control bytes", r.bytes_sent);
  table.add("final invariants",
            r.final_validation.clean() ? "clean"
                                       : r.final_validation.to_string());
  std::cout << "--- " << alg << " ---\n";
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  // Sweep-farm service mode: serve length-prefixed run requests on
  // stdin/stdout until the parent closes the pipe (scenario/worker.h).
  // Checked first — a worker must never print the banner or parse the
  // interactive flag set.
  if (flags.get_bool("worker", false)) {
    return scenario::serve_worker(STDIN_FILENO, STDOUT_FILENO);
  }

  // Cache maintenance mode: verify/repair a sweep-farm result cache and
  // exit. Exit code 1 when corruption survives the pass (corrupt cells
  // without --scrub-repair, or unrepairable ones with it), so CI can gate
  // on cache health.
  if (flags.get_bool("scrub-cache", false)) {
    const std::string dir = flags.get_string("cache-dir", "");
    const bool repair = flags.get_bool("scrub-repair", false);
    flags.finish();
    if (dir.empty()) {
      std::cerr << "--scrub-cache requires --cache-dir\n";
      return 2;
    }
    const scenario::ScrubReport report =
        scenario::scrub_cache(dir, repair, &std::cout);
    const std::size_t unresolved =
        repair ? report.unrepairable : report.corrupt;
    return unresolved == 0 ? 0 : 1;
  }

  scenario::Scenario s = scenario_from_flags(flags);
  const std::string algorithm = flags.get_string("algorithm", "mobic");
  const bool compare = flags.get_bool("compare", false);
  const std::string write_config_path = flags.get_string("write-config", "");
  const std::string events_csv = flags.get_string("events-csv", "");
  const std::string snapshots_csv = flags.get_string("snapshots-csv", "");
  const double snapshot_period = flags.get_double("snapshot-period", 10.0);
  const int jobs = flags.get_int("jobs", 0);
  const std::string metrics_out = flags.get_string("metrics-out", "");
  // Sweep-farm flags (honored on the --compare matrix path, which routes
  // through the Runner; the timeline path stays serial and uncached).
  const std::string cache_dir = flags.get_string("cache-dir", "");
  const bool resume = flags.get_bool("resume", false);
  const int resume_verify = flags.get_int("resume-verify", -1);
  const int workers = flags.get_int("workers", 0);
  const std::string worker_bin = flags.get_string("worker-bin", "");
  flags.finish();

  std::ofstream metrics_stream;
  if (!metrics_out.empty()) {
    metrics_stream.open(metrics_out, std::ios::trunc);
    if (!metrics_stream.is_open()) {
      std::cerr << "cannot open " << metrics_out << "\n";
      return 1;
    }
  }
  const auto write_metrics = [&](const std::string& alg,
                                 const scenario::RunResult& r) {
    if (metrics_stream.is_open()) {
      metrics_stream << "{\"algorithm\":\"" << alg << "\",\"seed\":" << s.seed
                     << ",\"final_heads\":" << r.final_heads
                     << ",\"metrics\":" << r.metrics.to_json() << "}\n";
    }
  };

  if (!write_config_path.empty()) {
    std::ofstream out(write_config_path);
    scenario::write_config(out, s);
    std::cout << "Wrote scenario config to " << write_config_path << "\n";
    return 0;
  }

  std::cout << "manetsim: " << s.n_nodes << " nodes, "
            << mobility::model_kind_name(s.fleet.kind) << " mobility, "
            << s.fleet.field.width << "x" << s.fleet.field.height
            << " m, Tx " << s.tx_range << " m, " << s.sim_time
            << " s, seed " << s.seed << "\n\n";

  const bool want_timeline = !events_csv.empty() || !snapshots_csv.empty();
  const auto run_one = [&](const std::string& alg) {
    scenario::TimelineRecorder recorder;
    const auto on_start = [&](scenario::LiveContext& ctx) {
      if (want_timeline) {
        recorder.schedule_snapshots(ctx, snapshot_period, s.sim_time);
      }
    };
    const auto result =
        run_scenario(s, scenario::factory_by_name(alg), on_start,
                     want_timeline ? &recorder : nullptr);
    print_report(alg, result);
    write_metrics(alg, result);
    if (!s.obs.trace_path.empty()) {
      std::cout << "Wrote trace (" << obs::trace_level_name(s.obs.trace)
                << ") to " << s.obs.trace_path << "\n";
    }
    if (!events_csv.empty()) {
      std::ofstream out(events_csv);
      recorder.write_events_csv(out);
      std::cout << "Wrote " << recorder.role_events().size() << "+"
                << recorder.affiliation_events().size() << " events to "
                << events_csv << "\n";
    }
    if (!snapshots_csv.empty()) {
      std::ofstream out(snapshots_csv);
      recorder.write_snapshots_csv(out);
      std::cout << "Wrote " << recorder.snapshots().size()
                << " snapshot rows to " << snapshots_csv << "\n";
    }
  };

  if (compare && !want_timeline) {
    // No timeline export: run both algorithms concurrently and report in
    // algorithm order.
    scenario::RunnerOptions opts;
    opts.jobs = jobs;
    opts.cache_dir = cache_dir;
    opts.resume = resume;
    opts.resume_verify = resume_verify;
    opts.workers = workers;
    opts.worker_bin = worker_bin;
    const scenario::Runner runner(opts);
    const auto algorithms = scenario::paper_algorithms();
    const auto matrix = runner.run_matrix(s, algorithms, 1);
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      print_report(algorithms[a].name, matrix[a][0]);
      write_metrics(algorithms[a].name, matrix[a][0]);
    }
  } else if (compare) {
    // TimelineRecorder hooks into the live run, so timeline exports stay
    // on the serial path.
    for (const auto& alg : scenario::paper_algorithms()) {
      run_one(alg.name);
    }
  } else {
    run_one(algorithm);
  }
  return 0;
}
