// Quickstart: run the paper's headline comparison on one scenario.
//
// 50 random-waypoint nodes on a 670 m x 670 m field (Table 1), MaxSpeed
// 20 m/s, no pause, Tx = 250 m, 900 simulated seconds. Prints the cluster
// stability metric CS (number of clusterhead changes) for Lowest-ID (LCC)
// and MOBIC, the average number of clusters, and the final Theorem-1
// validation — the essence of the paper in ~40 lines of API use.
//
//   ./quickstart [--seed N] [--range M] [--speed V] [--time S]
#include <iostream>

#include "scenario/experiment.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace manet;

  util::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double range = flags.get_double("range", 250.0);
  const double speed = flags.get_double("speed", 20.0);
  const double time = flags.get_double("time", 900.0);
  flags.finish();

  scenario::Scenario s;
  s.n_nodes = 50;
  s.fleet.kind = mobility::ModelKind::kRandomWaypoint;
  s.fleet.field = geom::Rect(670.0, 670.0);
  s.fleet.max_speed = speed;
  s.fleet.pause_time = 0.0;
  s.tx_range = range;
  s.sim_time = time;
  s.seed = seed;

  std::cout << "MOBIC quickstart: N=" << s.n_nodes << ", field=670x670 m, "
            << "MaxSpeed=" << speed << " m/s, Tx=" << range << " m, "
            << time << " s simulated\n\n";

  util::Table table({"algorithm", "CH changes (CS)", "avg clusters",
                     "reaffiliations", "mean CH reign (s)", "valid"});
  for (const auto& alg : scenario::paper_algorithms()) {
    const auto r = scenario::run_scenario(s, alg.factory);
    table.add(alg.name, r.ch_changes, util::Table::fmt(r.avg_clusters, 1),
              r.reaffiliations, util::Table::fmt(r.mean_head_lifetime, 1),
              r.final_validation.clean() ? "yes" : "transient");
  }
  table.print(std::cout);

  std::cout << "\n(The paper's Figure 3 reports MOBIC cutting CS by up to "
               "~33% at Tx=250 m.)\n";
  return 0;
}
