// Converts mobility scenarios between this repository's trace CSV and the
// ns-2 "setdest" movement-script format (the format the paper's own
// scenarios were generated in), in either direction. Can also generate a
// fresh scenario directly to either format.
//
//   # generate 50 RWP nodes and emit an ns-2 script
//   ./setdest_convert --generate rwp --nodes 50 --duration 900
//       --out scene.ns_movements
//
//   # convert an ns-2 script to trace CSV (and back)
//   ./setdest_convert --in scene.ns_movements --out scene.csv
//   ./setdest_convert --in scene.csv --out again.ns_movements --duration 900
#include <fstream>
#include <iostream>

#include "mobility/factory.h"
#include "mobility/setdest.h"
#include "mobility/trace.h"
#include "util/flags.h"

namespace {

using namespace manet;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string in_path = flags.get_string("in", "");
  const std::string out_path = flags.get_string("out", "");
  const std::string generate = flags.get_string("generate", "");
  const int nodes = flags.get_int("nodes", 50);
  const double duration = flags.get_double("duration", 900.0);
  const double field_side = flags.get_double("field", 670.0);
  const double speed = flags.get_double("speed", 20.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.finish();

  if (out_path.empty()) {
    std::cerr << "usage: --out PATH plus either --in PATH or "
                 "--generate <mobility model>\n";
    return 2;
  }

  std::vector<mobility::PiecewiseLinearTrack> tracks;
  if (!generate.empty()) {
    mobility::FleetParams p;
    p.kind = mobility::parse_model_kind(generate);
    p.field = geom::Rect(field_side, field_side);
    p.duration = duration;
    p.max_speed = speed;
    auto fleet = mobility::make_fleet(p, static_cast<std::size_t>(nodes),
                                      util::Rng(seed));
    for (auto& m : fleet) {
      tracks.push_back(mobility::record_track(*m, duration, 1.0));
    }
    std::cout << "generated " << tracks.size() << " "
              << mobility::model_kind_name(p.kind) << " tracks over "
              << duration << " s\n";
  } else if (!in_path.empty()) {
    std::ifstream in(in_path);
    if (!in.is_open()) {
      std::cerr << "cannot open " << in_path << "\n";
      return 2;
    }
    tracks = ends_with(in_path, ".csv")
                 ? mobility::read_traces_csv(in)
                 : mobility::read_setdest(in, duration);
    std::cout << "read " << tracks.size() << " tracks from " << in_path
              << "\n";
  } else {
    std::cerr << "need --in or --generate\n";
    return 2;
  }

  std::ofstream out(out_path);
  if (!out.is_open()) {
    std::cerr << "cannot open " << out_path << "\n";
    return 2;
  }
  if (ends_with(out_path, ".csv")) {
    mobility::write_traces_csv(out, tracks);
  } else {
    mobility::write_setdest(out, tracks);
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
